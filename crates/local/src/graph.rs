//! Compact CSR graph representation.
//!
//! All algorithms in the workspace operate on undirected simple graphs with
//! nodes identified by dense `u32` ids.  The CSR layout (one flat adjacency
//! array plus an offsets array) keeps neighbor scans cache-friendly and lets
//! rayon parallelize per-node work over disjoint slices — the core idiom
//! recommended by the Rust Performance Book for this kind of workload.

use rayon::prelude::*;

/// Dense node identifier.
pub type NodeId = u32;

/// An immutable undirected simple graph in CSR form.
///
/// Invariants (checked in debug builds and by the constructors):
/// * adjacency lists are sorted and duplicate-free,
/// * the graph is symmetric (`u ∈ N(v)` iff `v ∈ N(u)`),
/// * there are no self-loops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `adj` for node `v`.
    offsets: Vec<u64>,
    /// Concatenated sorted adjacency lists.
    adj: Vec<NodeId>,
}

impl Graph {
    /// Build a graph from an edge list over `n` nodes.
    ///
    /// Edges may appear in any orientation and with duplicates; self-loops
    /// are rejected.  Cost: `O(m log m)`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut builder = GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// The empty graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adj: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Whether the edge `{u, v}` is present. `O(log d(u))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as NodeId)
            .into_par_iter()
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Number of edges inside the subgraph induced by the *sorted* node set
    /// `nodes`.  `O(Σ_{v∈nodes} d(v) · log |nodes|)`.
    pub fn edges_within(&self, nodes: &[NodeId]) -> usize {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        let total: usize = nodes
            .iter()
            .map(|&v| {
                self.neighbors(v)
                    .iter()
                    .filter(|&&u| nodes.binary_search(&u).is_ok())
                    .count()
            })
            .sum();
        total / 2
    }

    /// Number of edges between neighbors of `v` (the quantity `m(N(v))`
    /// from Definition 2 of the paper, used for sparsity ζ_v).
    ///
    /// Computed as `½ Σ_{u∈N(v)} |N(u) ∩ N(v)|` with sorted-merge
    /// intersections: `O(Σ_{u∈N(v)} (d(u)+d(v)))`.
    pub fn edges_in_neighborhood(&self, v: NodeId) -> usize {
        let nv = self.neighbors(v);
        let total: usize = nv
            .iter()
            .map(|&u| sorted_intersection_size(self.neighbors(u), nv))
            .sum();
        total / 2
    }

    /// Size of `N(u) ∩ N(v)` (common-neighbor count), by sorted merge.
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        sorted_intersection_size(self.neighbors(u), self.neighbors(v))
    }

    /// The subgraph induced by `nodes` (need not be sorted; duplicates are
    /// an error).  Returns the induced graph over `nodes.len()` fresh ids
    /// plus the mapping from new id to original id.
    pub fn induced(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut sorted: Vec<NodeId> = nodes.to_vec();
        sorted.sort_unstable();
        debug_assert!(sorted.windows(2).all(|w| w[0] != w[1]), "duplicate nodes");
        // old id -> new id lookup via binary search on `sorted`.
        let degs: Vec<usize> = sorted
            .par_iter()
            .map(|&v| {
                self.neighbors(v)
                    .iter()
                    .filter(|&&u| sorted.binary_search(&u).is_ok())
                    .count()
            })
            .collect();
        let mut offsets = Vec::with_capacity(sorted.len() + 1);
        offsets.push(0u64);
        for d in &degs {
            offsets.push(offsets.last().unwrap() + *d as u64);
        }
        let mut adj = vec![0 as NodeId; *offsets.last().unwrap() as usize];
        // Fill rows in parallel: rows are disjoint slices.
        {
            let mut rows: Vec<&mut [NodeId]> = Vec::with_capacity(sorted.len());
            let mut rest: &mut [NodeId] = &mut adj;
            for d in &degs {
                let (row, tail) = rest.split_at_mut(*d);
                rows.push(row);
                rest = tail;
            }
            rows.par_iter_mut().enumerate().for_each(|(new_v, row)| {
                let v = sorted[new_v];
                let mut k = 0;
                for &u in self.neighbors(v) {
                    if let Ok(new_u) = sorted.binary_search(&u) {
                        row[k] = new_u as NodeId;
                        k += 1;
                    }
                }
                debug_assert_eq!(k, row.len());
            });
        }
        (Graph { offsets, adj }, sorted)
    }

    /// Check that `colors[v] != colors[u]` for every edge; `None` colors
    /// (encoded by callers as sentinels) must be pre-filtered — this checker
    /// treats every entry as a committed color.
    pub fn is_proper_coloring(&self, colors: &[u32]) -> bool {
        assert_eq!(colors.len(), self.n());
        (0..self.n() as NodeId).into_par_iter().all(|v| {
            self.neighbors(v)
                .iter()
                .all(|&u| colors[u as usize] != colors[v as usize])
        })
    }

    /// Connected components; returns `(component_id per node, #components)`.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let n = self.n();
        let mut comp = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for start in 0..n as NodeId {
            if comp[start as usize] != u32::MAX {
                continue;
            }
            comp[start as usize] = next;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    if comp[u as usize] == u32::MAX {
                        comp[u as usize] = next;
                        stack.push(u);
                    }
                }
            }
            next += 1;
        }
        (comp, next as usize)
    }

    /// Greedy proper coloring with colors drawn from per-node palettes.
    ///
    /// Used as the "collect onto one machine and finish greedily" step of
    /// Theorem 12 and as a sequential baseline.  `palette(v)` must contain
    /// at least `degree(v)+1` colors for the greedy argument to always
    /// succeed.  Returns `None` if some node runs out of palette (only
    /// possible if the precondition is violated).
    pub fn greedy_color_with<F>(&self, order: &[NodeId], palette: F) -> Option<Vec<u32>>
    where
        F: Fn(NodeId) -> Vec<u32>,
    {
        let mut colors = vec![u32::MAX; self.n()];
        for &v in order {
            let mut taken: Vec<u32> = self
                .neighbors(v)
                .iter()
                .map(|&u| colors[u as usize])
                .filter(|&c| c != u32::MAX)
                .collect();
            taken.sort_unstable();
            let chosen = palette(v)
                .into_iter()
                .find(|c| taken.binary_search(c).is_err())?;
            colors[v as usize] = chosen;
        }
        Some(colors)
    }

    /// Total words needed to store the graph (offsets + adjacency), used by
    /// the MPC space accountant.
    pub fn words(&self) -> usize {
        self.offsets.len() + self.adj.len()
    }

    /// Construct directly from parts (used by [`GraphBuilder`] and tests).
    pub(crate) fn from_parts(offsets: Vec<u64>, adj: Vec<NodeId>) -> Self {
        let g = Graph { offsets, adj };
        debug_assert!(g.validate().is_ok(), "invalid CSR parts");
        g
    }

    /// Validate all structural invariants; used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if *self.offsets.last().unwrap() as usize != self.adj.len() {
            return Err("offsets do not cover adj".into());
        }
        for v in 0..n as NodeId {
            let nb = self.neighbors(v);
            if !nb.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {v} not sorted/dedup"));
            }
            if nb.contains(&v) {
                return Err(format!("self loop at {v}"));
            }
            if nb.iter().any(|&u| u as usize >= n) {
                return Err(format!("out of range neighbor at {v}"));
            }
            for &u in nb {
                if !self.has_edge(u, v) {
                    return Err(format!("asymmetric edge {v}-{u}"));
                }
            }
        }
        Ok(())
    }
}

/// Size of the intersection of two sorted slices.
#[inline]
pub fn sorted_intersection_size(a: &[NodeId], b: &[NodeId]) -> usize {
    // Two-pointer merge; switch to galloping when lengths are lopsided.
    if a.len() > 8 * b.len() {
        return b.iter().filter(|x| a.binary_search(x).is_ok()).count();
    }
    if b.len() > 8 * a.len() {
        return a.iter().filter(|x| b.binary_search(x).is_ok()).count();
    }
    let (mut i, mut j, mut out) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out += 1;
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Incremental builder that deduplicates and symmetrizes edges.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Builder over `n` nodes with no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Queue the undirected edge `{u, v}`.  Panics on self-loops or
    /// out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u != v, "self loop {u}");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range n={}",
            self.n
        );
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Finalize into CSR form: sorts, dedups and symmetrizes. `O(m log m)`.
    pub fn build(mut self) -> Graph {
        self.edges.par_sort_unstable();
        self.edges.dedup();
        let mut deg = vec![0u64; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0u64);
        for d in &deg {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut cursor: Vec<u64> = offsets[..self.n].to_vec();
        let mut adj = vec![0 as NodeId; *offsets.last().unwrap() as usize];
        for &(u, v) in &self.edges {
            adj[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Rows were filled in increasing (u,v) order: row of u receives v's
        // in increasing order for v>u but interleaved with v<u entries, so a
        // per-row sort is still required.
        {
            let mut rows: Vec<&mut [NodeId]> = Vec::with_capacity(self.n);
            let mut rest: &mut [NodeId] = &mut adj;
            for v in 0..self.n {
                let d = (offsets[v + 1] - offsets[v]) as usize;
                let (row, tail) = rest.split_at_mut(d);
                rows.push(row);
                rest = tail;
            }
            rows.par_iter_mut().for_each(|row| row.sort_unstable());
        }
        Graph::from_parts(offsets, adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as NodeId - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn builds_path() {
        let g = path(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn dedups_and_symmetrizes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn triangle_neighborhood_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]);
        // N(0) = {1,2,3}; edges inside: (1,2), (2,3) -> 2
        assert_eq!(g.edges_in_neighborhood(0), 2);
        // N(2) = {0,1,3}; edges inside: (0,1),(0,3) -> 2
        assert_eq!(g.edges_in_neighborhood(2), 2);
    }

    #[test]
    fn induced_subgraph_maps_back() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]);
        let (h, map) = g.induced(&[1, 2, 4]);
        assert_eq!(h.n(), 3);
        assert_eq!(map, vec![1, 2, 4]);
        // edges among {1,2,4}: (1,2) and (1,4)
        assert_eq!(h.m(), 2);
        assert!(h.has_edge(0, 1)); // 1-2
        assert!(h.has_edge(0, 2)); // 1-4
        assert!(!h.has_edge(1, 2)); // 2-4 absent
    }

    #[test]
    fn empty_induced() {
        let g = path(4);
        let (h, map) = g.induced(&[]);
        assert_eq!(h.n(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn proper_coloring_checker() {
        let g = path(4);
        assert!(g.is_proper_coloring(&[0, 1, 0, 1]));
        assert!(!g.is_proper_coloring(&[0, 0, 1, 0]));
    }

    #[test]
    fn components_of_two_paths() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let (comp, k) = g.components();
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[5]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn greedy_colors_with_minimal_palettes() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let order: Vec<NodeId> = (0..5).collect();
        let colors = g
            .greedy_color_with(&order, |v| (0..=g.degree(v) as u32).collect())
            .unwrap();
        assert!(g.is_proper_coloring(&colors));
    }

    #[test]
    fn edges_within_subset() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        assert_eq!(g.edges_within(&[0, 1, 2]), 2);
        assert_eq!(g.edges_within(&[0, 2, 4]), 1);
        assert_eq!(g.edges_within(&[1, 3]), 0);
    }

    #[test]
    fn common_neighbors_counts() {
        let g = Graph::from_edges(5, &[(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)]);
        assert_eq!(g.common_neighbors(0, 1), 2); // {2,3}
        assert_eq!(g.common_neighbors(2, 3), 2); // {0,1}
        assert_eq!(g.common_neighbors(2, 4), 1); // {0}
    }

    #[test]
    fn max_degree_and_words() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.words(), 5 + 6);
    }
}
