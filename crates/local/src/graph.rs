//! Compact CSR graph representation.
//!
//! All algorithms in the workspace operate on undirected simple graphs with
//! nodes identified by dense `u32` ids.  The CSR layout (one flat adjacency
//! array plus an offsets array) keeps neighbor scans cache-friendly and lets
//! rayon parallelize per-node work over disjoint slices — the core idiom
//! recommended by the Rust Performance Book for this kind of workload.

use rayon::prelude::*;

/// Dense node identifier.
pub type NodeId = u32;

/// Backing storage for the two CSR arrays — the `GraphStore` of the
/// crate docs.  Owned heap vectors are the default; on little-endian
/// unix targets a graph can instead borrow its arrays zero-copy out of
/// an mmap'd `.pcg` file ([`crate::store::MappedCsr`]).  Every [`Graph`]
/// accessor resolves through [`Graph::offsets`]/[`Graph::adj`], so the
/// two storages are observationally identical.
#[derive(Clone, Debug)]
enum Store {
    /// Heap-owned CSR arrays.
    Owned {
        /// `offsets[v]..offsets[v+1]` indexes `adj` for node `v`.
        offsets: Vec<u64>,
        /// Concatenated sorted adjacency lists.
        adj: Vec<NodeId>,
    },
    /// Arrays borrowed zero-copy from a shared read-only memory map.
    #[cfg(all(unix, target_endian = "little"))]
    Mapped(crate::store::MappedCsr),
}

/// An immutable undirected simple graph in CSR form.
///
/// Invariants (checked in debug builds and by the constructors):
/// * adjacency lists are sorted and duplicate-free,
/// * the graph is symmetric (`u ∈ N(v)` iff `v ∈ N(u)`),
/// * there are no self-loops.
#[derive(Clone, Debug)]
pub struct Graph {
    store: Store,
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        // Logical CSR equality — an mmap-backed graph equals its owned
        // twin whenever offsets and adjacency match bit for bit.
        self.offsets() == other.offsets() && self.adj() == other.adj()
    }
}

impl Eq for Graph {}

impl Graph {
    /// The offsets array: `offsets[v]..offsets[v+1]` indexes [`Graph::adj`]
    /// for node `v`.  Exposed for codecs and bit-identity assertions.
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        match &self.store {
            Store::Owned { offsets, .. } => offsets,
            #[cfg(all(unix, target_endian = "little"))]
            Store::Mapped(m) => m.offsets(),
        }
    }

    /// The concatenated sorted adjacency array.  Exposed for codecs and
    /// bit-identity assertions.
    #[inline]
    pub fn adj(&self) -> &[NodeId] {
        match &self.store {
            Store::Owned { adj, .. } => adj,
            #[cfg(all(unix, target_endian = "little"))]
            Store::Mapped(m) => m.adj(),
        }
    }

    /// Whether this graph borrows its arrays from a memory map.
    pub fn is_mapped(&self) -> bool {
        #[cfg(all(unix, target_endian = "little"))]
        {
            matches!(self.store, Store::Mapped(_))
        }
        #[cfg(not(all(unix, target_endian = "little")))]
        {
            false
        }
    }

    /// Wrap zero-copy mapped CSR arrays as a graph.
    ///
    /// Runs the cheap linear structural checks (monotone offsets that
    /// cover `adj`, strictly sorted rows, in-range neighbors, no
    /// self-loops) — `O(n + m)` with no allocation.  Symmetry is *not*
    /// re-verified here: `.pcg` files are written from already-valid
    /// graphs and integrity-checked by the codec's checksum; debug
    /// builds still run the full [`Graph::validate`].
    #[cfg(all(unix, target_endian = "little"))]
    pub fn from_mapped(csr: crate::store::MappedCsr) -> Result<Self, String> {
        {
            let offsets = csr.offsets();
            let adj = csr.adj();
            let n = offsets.len() - 1;
            if *offsets.last().unwrap() as usize != adj.len() || offsets[0] != 0 {
                return Err("mapped graph: offsets do not cover adj".into());
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err("mapped graph: offsets not monotone".into());
            }
            for v in 0..n {
                let row = &adj[offsets[v] as usize..offsets[v + 1] as usize];
                if !row.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("mapped graph: adjacency of {v} not sorted/dedup"));
                }
                if row.iter().any(|&u| u as usize >= n || u as usize == v) {
                    return Err(format!("mapped graph: bad neighbor at {v}"));
                }
            }
        }
        let g = Graph {
            store: Store::Mapped(csr),
        };
        debug_assert!(g.validate().is_ok(), "invalid mapped CSR");
        Ok(g)
    }
    /// Build a graph from an edge list over `n` nodes.
    ///
    /// Edges may appear in any orientation and with duplicates; self-loops
    /// are rejected.  Cost: `O(m log m)`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut builder = GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v);
        }
        builder.build()
    }

    /// Build a graph from a **re-runnable** edge stream over `n` nodes,
    /// without ever materializing the edge list.
    ///
    /// `stream` is invoked twice with an edge sink and must emit the
    /// *exact same* edge sequence both times (deterministic generators
    /// replayed from the same seed qualify).  The first pass counts
    /// degrees, the second scatters directly into the CSR adjacency
    /// array; rows are then sorted and deduplicated in place.  Peak
    /// memory is the final CSR plus one `u64` cursor per node — no
    /// `Vec<(u32, u32)>` edge buffer and no global sort scratch, which
    /// is what makes n = 10^7 instances fit.
    ///
    /// Output is bit-identical to queueing the same edges on a
    /// [`GraphBuilder`]: duplicates collapse, orientation is ignored,
    /// and self-loops or out-of-range endpoints panic.
    pub fn from_edge_stream<F>(n: usize, stream: F) -> Self
    where
        F: Fn(&mut dyn FnMut(NodeId, NodeId)),
    {
        let mut sb = StreamBuilder::new(n);
        stream(&mut |u, v| sb.count_edge(u, v));
        sb.finish_counting();
        stream(&mut |u, v| sb.scatter_edge(u, v));
        sb.finish()
    }

    /// The empty graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            store: Store::Owned {
                offsets: vec![0; n + 1],
                adj: Vec::new(),
            },
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets().len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj().len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let offsets = self.offsets();
        (offsets[v as usize + 1] - offsets[v as usize]) as usize
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let offsets = self.offsets();
        &self.adj()[offsets[v as usize] as usize..offsets[v as usize + 1] as usize]
    }

    /// Whether the edge `{u, v}` is present. `O(log d(u))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as NodeId)
            .into_par_iter()
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Number of edges inside the subgraph induced by the *sorted* node set
    /// `nodes`.  `O(Σ_{v∈nodes} d(v) · log |nodes|)`.
    pub fn edges_within(&self, nodes: &[NodeId]) -> usize {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]));
        let total: usize = nodes
            .iter()
            .map(|&v| {
                self.neighbors(v)
                    .iter()
                    .filter(|&&u| nodes.binary_search(&u).is_ok())
                    .count()
            })
            .sum();
        total / 2
    }

    /// Number of edges between neighbors of `v` (the quantity `m(N(v))`
    /// from Definition 2 of the paper, used for sparsity ζ_v).
    ///
    /// Computed as `½ Σ_{u∈N(v)} |N(u) ∩ N(v)|` with sorted-merge
    /// intersections: `O(Σ_{u∈N(v)} (d(u)+d(v)))`.
    pub fn edges_in_neighborhood(&self, v: NodeId) -> usize {
        let nv = self.neighbors(v);
        let total: usize = nv
            .iter()
            .map(|&u| sorted_intersection_size(self.neighbors(u), nv))
            .sum();
        total / 2
    }

    /// Size of `N(u) ∩ N(v)` (common-neighbor count), by sorted merge.
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> usize {
        sorted_intersection_size(self.neighbors(u), self.neighbors(v))
    }

    /// The subgraph induced by `nodes` (need not be sorted; duplicates are
    /// an error).  Returns the induced graph over `nodes.len()` fresh ids
    /// plus the mapping from new id to original id.
    pub fn induced(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut sorted: Vec<NodeId> = nodes.to_vec();
        sorted.sort_unstable();
        debug_assert!(sorted.windows(2).all(|w| w[0] != w[1]), "duplicate nodes");
        // old id -> new id lookup via binary search on `sorted`.
        let degs: Vec<usize> = sorted
            .par_iter()
            .map(|&v| {
                self.neighbors(v)
                    .iter()
                    .filter(|&&u| sorted.binary_search(&u).is_ok())
                    .count()
            })
            .collect();
        let mut offsets = Vec::with_capacity(sorted.len() + 1);
        offsets.push(0u64);
        for d in &degs {
            offsets.push(offsets.last().unwrap() + *d as u64);
        }
        let mut adj = vec![0 as NodeId; *offsets.last().unwrap() as usize];
        // Fill rows in parallel: rows are disjoint slices.
        {
            let mut rows: Vec<&mut [NodeId]> = Vec::with_capacity(sorted.len());
            let mut rest: &mut [NodeId] = &mut adj;
            for d in &degs {
                let (row, tail) = rest.split_at_mut(*d);
                rows.push(row);
                rest = tail;
            }
            rows.par_iter_mut().enumerate().for_each(|(new_v, row)| {
                let v = sorted[new_v];
                let mut k = 0;
                for &u in self.neighbors(v) {
                    if let Ok(new_u) = sorted.binary_search(&u) {
                        row[k] = new_u as NodeId;
                        k += 1;
                    }
                }
                debug_assert_eq!(k, row.len());
            });
        }
        (
            Graph {
                store: Store::Owned { offsets, adj },
            },
            sorted,
        )
    }

    /// Check that `colors[v] != colors[u]` for every edge; `None` colors
    /// (encoded by callers as sentinels) must be pre-filtered — this checker
    /// treats every entry as a committed color.
    pub fn is_proper_coloring(&self, colors: &[u32]) -> bool {
        assert_eq!(colors.len(), self.n());
        (0..self.n() as NodeId).into_par_iter().all(|v| {
            self.neighbors(v)
                .iter()
                .all(|&u| colors[u as usize] != colors[v as usize])
        })
    }

    /// Connected components; returns `(component_id per node, #components)`.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let n = self.n();
        let mut comp = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for start in 0..n as NodeId {
            if comp[start as usize] != u32::MAX {
                continue;
            }
            comp[start as usize] = next;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    if comp[u as usize] == u32::MAX {
                        comp[u as usize] = next;
                        stack.push(u);
                    }
                }
            }
            next += 1;
        }
        (comp, next as usize)
    }

    /// Greedy proper coloring with colors drawn from per-node palettes.
    ///
    /// Used as the "collect onto one machine and finish greedily" step of
    /// Theorem 12 and as a sequential baseline.  `palette(v)` must contain
    /// at least `degree(v)+1` colors for the greedy argument to always
    /// succeed.  Returns `None` if some node runs out of palette (only
    /// possible if the precondition is violated).
    pub fn greedy_color_with<F>(&self, order: &[NodeId], palette: F) -> Option<Vec<u32>>
    where
        F: Fn(NodeId) -> Vec<u32>,
    {
        let mut colors = vec![u32::MAX; self.n()];
        for &v in order {
            let mut taken: Vec<u32> = self
                .neighbors(v)
                .iter()
                .map(|&u| colors[u as usize])
                .filter(|&c| c != u32::MAX)
                .collect();
            taken.sort_unstable();
            let chosen = palette(v)
                .into_iter()
                .find(|c| taken.binary_search(c).is_err())?;
            colors[v as usize] = chosen;
        }
        Some(colors)
    }

    /// Total words needed to store the graph (offsets + adjacency), used by
    /// the MPC space accountant.
    pub fn words(&self) -> usize {
        self.offsets().len() + self.adj().len()
    }

    /// Construct directly from parts (used by [`GraphBuilder`] and tests).
    pub(crate) fn from_parts(offsets: Vec<u64>, adj: Vec<NodeId>) -> Self {
        let g = Graph {
            store: Store::Owned { offsets, adj },
        };
        debug_assert!(g.validate().is_ok(), "invalid CSR parts");
        g
    }

    /// Construct an owned graph from already-built CSR arrays, running the
    /// same cheap linear structural checks as [`Graph::from_mapped`].
    ///
    /// This is the portable loading path for on-disk formats: codecs parse
    /// the two arrays and hand them over without an `O(m log m)` rebuild.
    pub fn from_csr(offsets: Vec<u64>, adj: Vec<NodeId>) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("csr graph: empty offsets array".into());
        }
        let n = offsets.len() - 1;
        if *offsets.last().unwrap() as usize != adj.len() || offsets[0] != 0 {
            return Err("csr graph: offsets do not cover adj".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("csr graph: offsets not monotone".into());
        }
        for v in 0..n {
            let row = &adj[offsets[v] as usize..offsets[v + 1] as usize];
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("csr graph: adjacency of {v} not sorted/dedup"));
            }
            if row.iter().any(|&u| u as usize >= n || u as usize == v) {
                return Err(format!("csr graph: bad neighbor at {v}"));
            }
        }
        let g = Graph {
            store: Store::Owned { offsets, adj },
        };
        debug_assert!(g.validate().is_ok(), "invalid CSR parts");
        Ok(g)
    }

    /// Validate all structural invariants; used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if *self.offsets().last().unwrap() as usize != self.adj().len() {
            return Err("offsets do not cover adj".into());
        }
        for v in 0..n as NodeId {
            let nb = self.neighbors(v);
            if !nb.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {v} not sorted/dedup"));
            }
            if nb.contains(&v) {
                return Err(format!("self loop at {v}"));
            }
            if nb.iter().any(|&u| u as usize >= n) {
                return Err(format!("out of range neighbor at {v}"));
            }
            for &u in nb {
                if !self.has_edge(u, v) {
                    return Err(format!("asymmetric edge {v}-{u}"));
                }
            }
        }
        Ok(())
    }
}

/// Size of the intersection of two sorted slices.
#[inline]
pub fn sorted_intersection_size(a: &[NodeId], b: &[NodeId]) -> usize {
    // Two-pointer merge; switch to galloping when lengths are lopsided.
    if a.len() > 8 * b.len() {
        return b.iter().filter(|x| a.binary_search(x).is_ok()).count();
    }
    if b.len() > 8 * a.len() {
        return a.iter().filter(|x| b.binary_search(x).is_ok()).count();
    }
    let (mut i, mut j, mut out) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out += 1;
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Incremental builder that deduplicates and symmetrizes edges.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Builder over `n` nodes with no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Queue the undirected edge `{u, v}`.  Panics on self-loops or
    /// out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u != v, "self loop {u}");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range n={}",
            self.n
        );
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Finalize into CSR form: sorts, dedups and symmetrizes. `O(m log m)`.
    pub fn build(mut self) -> Graph {
        self.edges.par_sort_unstable();
        self.edges.dedup();
        let mut deg = vec![0u64; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0u64);
        for d in &deg {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut cursor: Vec<u64> = offsets[..self.n].to_vec();
        let mut adj = vec![0 as NodeId; *offsets.last().unwrap() as usize];
        for &(u, v) in &self.edges {
            adj[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Rows were filled in increasing (u,v) order: row of u receives v's
        // in increasing order for v>u but interleaved with v<u entries, so a
        // per-row sort is still required.
        sort_rows(&offsets, &mut adj);
        Graph::from_parts(offsets, adj)
    }
}

/// Sort every CSR row of `adj` in place, in parallel over node chunks.
///
/// Rows are the disjoint slices `offsets[v]..offsets[v+1]`, so striping
/// the adjacency array at node-chunk boundaries gives each pool task an
/// exclusive span; stealing balances the skewed row lengths.
pub(crate) fn sort_rows(offsets: &[u64], adj: &mut [NodeId]) {
    const NODE_CHUNK: usize = 1024;
    let n = offsets.len() - 1;
    let workers = parcolor_exec::resolve_workers(0);
    if workers <= 1 || adj.len() < (1 << 14) || parcolor_exec::in_pool_worker() {
        for v in 0..n {
            adj[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        return;
    }
    let pool = parcolor_exec::Executor::global();
    let scatter = parcolor_exec::ScatterMut::new(adj);
    let scatter = &scatter;
    parcolor_exec::par_map_chunks(pool, workers, n, NODE_CHUNK, move |start, clen| {
        let lo = offsets[start] as usize;
        let hi = offsets[start + clen] as usize;
        // SAFETY: node chunks are disjoint, hence so are their adj spans.
        let span = unsafe { scatter.stripe_mut(lo, hi - lo) };
        for v in start..start + clen {
            let (s, e) = (offsets[v] as usize - lo, offsets[v + 1] as usize - lo);
            span[s..e].sort_unstable();
        }
    });
}

/// Two-pass streaming CSR builder — the million-node construction path.
///
/// Protocol (what [`Graph::from_edge_stream`] drives):
/// 1. feed every edge to [`StreamBuilder::count_edge`] (pass 1),
/// 2. call [`StreamBuilder::finish_counting`] once,
/// 3. replay the *same* edge sequence through
///    [`StreamBuilder::scatter_edge`] (pass 2),
/// 4. call [`StreamBuilder::finish`].
///
/// Unlike [`GraphBuilder`], no edge list is ever materialized: pass 1
/// accumulates degree counts, `finish_counting` prefix-sums them into
/// offsets and allocates the adjacency array, pass 2 scatters each edge
/// straight into its two rows, and `finish` sorts and deduplicates rows
/// in place.  Peak memory is the final CSR plus one `u64` cursor per
/// node.  The result is bit-identical to queueing the same edges on a
/// [`GraphBuilder`].
#[derive(Clone, Debug)]
pub struct StreamBuilder {
    n: usize,
    /// Pass 1: per-node degree counts.  After [`StreamBuilder::finish_counting`]:
    /// per-node write cursors for the scatter pass.
    cursor: Vec<u64>,
    offsets: Vec<u64>,
    adj: Vec<NodeId>,
    counting: bool,
}

impl StreamBuilder {
    /// Builder over `n` nodes, ready for the counting pass.
    pub fn new(n: usize) -> Self {
        StreamBuilder {
            n,
            cursor: vec![0; n],
            offsets: Vec::new(),
            adj: Vec::new(),
            counting: true,
        }
    }

    #[inline]
    fn check_edge(&self, u: NodeId, v: NodeId) {
        assert!(u != v, "self loop {u}");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range n={}",
            self.n
        );
    }

    /// Pass 1: count the undirected edge `{u, v}`.  Panics on self-loops
    /// or out-of-range endpoints, like [`GraphBuilder::add_edge`].
    #[inline]
    pub fn count_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(self.counting, "count_edge after finish_counting");
        self.check_edge(u, v);
        self.cursor[u as usize] += 1;
        self.cursor[v as usize] += 1;
    }

    /// Seal pass 1: prefix-sum the degree counts into offsets and
    /// allocate the adjacency array for the scatter pass.
    pub fn finish_counting(&mut self) {
        assert!(self.counting, "finish_counting called twice");
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0u64);
        for &d in &self.cursor {
            offsets.push(offsets.last().unwrap() + d);
        }
        self.adj = vec![0 as NodeId; *offsets.last().unwrap() as usize];
        self.cursor.copy_from_slice(&offsets[..self.n]);
        self.offsets = offsets;
        self.counting = false;
    }

    /// Pass 2: scatter the undirected edge `{u, v}` into both rows.
    /// Panics if the stream emits more edges for a node than pass 1
    /// counted — i.e. the stream was not re-runnable.
    #[inline]
    pub fn scatter_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(!self.counting, "scatter_edge before finish_counting");
        self.check_edge(u, v);
        let (ui, vi) = (u as usize, v as usize);
        assert!(
            self.cursor[ui] < self.offsets[ui + 1] && self.cursor[vi] < self.offsets[vi + 1],
            "edge stream changed between passes (extra edge ({u},{v}))"
        );
        self.adj[self.cursor[ui] as usize] = v;
        self.cursor[ui] += 1;
        self.adj[self.cursor[vi] as usize] = u;
        self.cursor[vi] += 1;
    }

    /// Finalize: sort rows in parallel, deduplicate them in place, and
    /// wrap the compacted arrays.  Panics if pass 2 emitted fewer edges
    /// than pass 1 (the stream was not re-runnable).
    pub fn finish(mut self) -> Graph {
        assert!(!self.counting, "finish before finish_counting");
        assert!(
            self.cursor[..] == self.offsets[1..],
            "edge stream changed between passes (missing edges)"
        );
        sort_rows(&self.offsets, &mut self.adj);
        // In-place per-row dedup compaction.  The write head `w` never
        // overtakes the read head, and offsets are rewritten only after
        // the original row bounds have been consumed.
        let mut w = 0usize;
        let mut read_lo = 0usize;
        for v in 0..self.n {
            let read_hi = self.offsets[v + 1] as usize;
            let row_start = w;
            for r in read_lo..read_hi {
                let x = self.adj[r];
                if w == row_start || self.adj[w - 1] != x {
                    self.adj[w] = x;
                    w += 1;
                }
            }
            self.offsets[v + 1] = w as u64;
            read_lo = read_hi;
        }
        self.adj.truncate(w);
        Graph::from_parts(self.offsets, self.adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as NodeId - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn builds_path() {
        let g = path(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn dedups_and_symmetrizes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn triangle_neighborhood_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]);
        // N(0) = {1,2,3}; edges inside: (1,2), (2,3) -> 2
        assert_eq!(g.edges_in_neighborhood(0), 2);
        // N(2) = {0,1,3}; edges inside: (0,1),(0,3) -> 2
        assert_eq!(g.edges_in_neighborhood(2), 2);
    }

    #[test]
    fn induced_subgraph_maps_back() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]);
        let (h, map) = g.induced(&[1, 2, 4]);
        assert_eq!(h.n(), 3);
        assert_eq!(map, vec![1, 2, 4]);
        // edges among {1,2,4}: (1,2) and (1,4)
        assert_eq!(h.m(), 2);
        assert!(h.has_edge(0, 1)); // 1-2
        assert!(h.has_edge(0, 2)); // 1-4
        assert!(!h.has_edge(1, 2)); // 2-4 absent
    }

    #[test]
    fn empty_induced() {
        let g = path(4);
        let (h, map) = g.induced(&[]);
        assert_eq!(h.n(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn proper_coloring_checker() {
        let g = path(4);
        assert!(g.is_proper_coloring(&[0, 1, 0, 1]));
        assert!(!g.is_proper_coloring(&[0, 0, 1, 0]));
    }

    #[test]
    fn components_of_two_paths() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let (comp, k) = g.components();
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[5]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn greedy_colors_with_minimal_palettes() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let order: Vec<NodeId> = (0..5).collect();
        let colors = g
            .greedy_color_with(&order, |v| (0..=g.degree(v) as u32).collect())
            .unwrap();
        assert!(g.is_proper_coloring(&colors));
    }

    #[test]
    fn edges_within_subset() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        assert_eq!(g.edges_within(&[0, 1, 2]), 2);
        assert_eq!(g.edges_within(&[0, 2, 4]), 1);
        assert_eq!(g.edges_within(&[1, 3]), 0);
    }

    #[test]
    fn common_neighbors_counts() {
        let g = Graph::from_edges(5, &[(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)]);
        assert_eq!(g.common_neighbors(0, 1), 2); // {2,3}
        assert_eq!(g.common_neighbors(2, 3), 2); // {0,1}
        assert_eq!(g.common_neighbors(2, 4), 1); // {0}
    }

    #[test]
    fn max_degree_and_words() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.words(), 5 + 6);
    }
}
