//! Synchronous LOCAL round engine and metrics.
//!
//! The LOCAL model charges one round per synchronous message exchange.  The
//! procedures in this workspace are written as whole-graph data-parallel
//! passes (the natural shape for rayon), so the engine's job is to *account*
//! rounds and message volume rather than to route individual messages: each
//! procedure declares how many LOCAL rounds a pass costs, mirroring how the
//! paper charges its subprocedures (Definition 5 fixes a per-procedure τ).

use serde::Serialize;

/// Cumulative LOCAL-model metrics for one execution.
#[derive(Clone, Debug, Default, Serialize)]
pub struct LocalMetrics {
    /// Total LOCAL rounds charged.
    pub rounds: u64,
    /// Total messages (words) charged across all rounds.
    pub messages: u64,
    /// Per-phase breakdown: (label, rounds, messages).
    pub phases: Vec<(String, u64, u64)>,
}

impl LocalMetrics {
    /// Accumulate another execution's metrics into this one.
    pub fn merge(&mut self, other: &LocalMetrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.phases.extend(other.phases.iter().cloned());
    }
}

/// Round accountant for a LOCAL execution.
///
/// Usage: `engine.charge("slack_color", rounds, messages)` after each pass.
/// A `RoundEngine` is deliberately cheap (no interior locking) — executions
/// are single-owner; cross-seed parallel evaluation clones sub-engines and
/// discards them (only the chosen seed's run is charged).
#[derive(Clone, Debug, Default)]
pub struct RoundEngine {
    metrics: LocalMetrics,
    phase_label: Option<String>,
    phase_start_rounds: u64,
    phase_start_messages: u64,
}

impl RoundEngine {
    /// Fresh engine with zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `rounds` LOCAL rounds and `messages` words of communication.
    pub fn charge(&mut self, rounds: u64, messages: u64) {
        self.metrics.rounds += rounds;
        self.metrics.messages += messages;
    }

    /// Begin a labelled phase (ends any open phase).
    pub fn begin_phase(&mut self, label: impl Into<String>) {
        self.end_phase();
        self.phase_label = Some(label.into());
        self.phase_start_rounds = self.metrics.rounds;
        self.phase_start_messages = self.metrics.messages;
    }

    /// Close the open phase, recording its deltas.
    pub fn end_phase(&mut self) {
        if let Some(label) = self.phase_label.take() {
            self.metrics.phases.push((
                label,
                self.metrics.rounds - self.phase_start_rounds,
                self.metrics.messages - self.phase_start_messages,
            ));
        }
    }

    /// Rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Message words charged so far.
    pub fn messages(&self) -> u64 {
        self.metrics.messages
    }

    /// Finish and extract metrics.
    pub fn finish(mut self) -> LocalMetrics {
        self.end_phase();
        self.metrics
    }

    /// Read-only snapshot.
    pub fn metrics(&self) -> &LocalMetrics {
        &self.metrics
    }
}

/// `log* x` with base-2 iterated logarithm (number of times `log2` must be
/// applied before the value drops to at most 1).  Used in round-budget
/// assertions: SlackColor runs `O(log* n)` LOCAL rounds.
pub fn log_star(x: f64) -> u32 {
    let mut v = x;
    let mut k = 0;
    while v > 1.0 {
        v = v.log2();
        k += 1;
        if k > 64 {
            break;
        }
    }
    k
}

/// Iterated exponentiation `2 ↑↑ i` saturating at `u64::MAX`
/// (`2↑↑0 = 1`, `2↑↑(i+1) = 2^(2↑↑i)`), as used by SlackColor's
/// doubling schedule (Algorithm 2, line 5 of the paper).
pub fn tower(i: u32) -> u64 {
    let mut v: u64 = 1;
    for _ in 0..i {
        if v >= 64 {
            return u64::MAX;
        }
        v = 1u64 << v;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut e = RoundEngine::new();
        e.charge(3, 100);
        e.charge(2, 50);
        assert_eq!(e.rounds(), 5);
        assert_eq!(e.messages(), 150);
    }

    #[test]
    fn phases_record_deltas() {
        let mut e = RoundEngine::new();
        e.begin_phase("a");
        e.charge(2, 10);
        e.begin_phase("b");
        e.charge(5, 20);
        let m = e.finish();
        assert_eq!(m.phases, vec![("a".into(), 2, 10), ("b".into(), 5, 20)]);
        assert_eq!(m.rounds, 7);
    }

    #[test]
    fn metrics_merge() {
        let mut a = LocalMetrics {
            rounds: 1,
            messages: 2,
            phases: vec![("x".into(), 1, 2)],
        };
        let b = LocalMetrics {
            rounds: 3,
            messages: 4,
            phases: vec![("y".into(), 3, 4)],
        };
        a.merge(&b);
        assert_eq!(a.rounds, 4);
        assert_eq!(a.messages, 6);
        assert_eq!(a.phases.len(), 2);
    }

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(1e18), 5);
    }

    #[test]
    fn tower_values() {
        assert_eq!(tower(0), 1);
        assert_eq!(tower(1), 2);
        assert_eq!(tower(2), 4);
        assert_eq!(tower(3), 16);
        assert_eq!(tower(4), 65536);
        assert_eq!(tower(5), u64::MAX); // saturates: 2^65536
    }

    #[test]
    fn unlabelled_charges_have_no_phase() {
        let mut e = RoundEngine::new();
        e.charge(1, 1);
        let m = e.finish();
        assert!(m.phases.is_empty());
        assert_eq!(m.rounds, 1);
    }
}
