#![warn(missing_docs)]
//! LOCAL-model substrate for the `parcolor` workspace.
//!
//! This crate provides the shared building blocks used by every other crate
//! in the reproduction of *"Parallel Derandomization for Coloring"*
//! (Coy, Czumaj, Davies-Peck, Mishra; IPDPS 2024, arXiv:2302.04378):
//!
//! * [`graph::Graph`] — a compact CSR (compressed-sparse-row) undirected
//!   graph, the substrate on which both the LOCAL and MPC simulations run.
//! * [`power`] — explicit construction of graph powers `G^k`, needed by the
//!   derandomization framework (Theorem 12 colors `G^{4τ}` to split PRG
//!   output into per-node chunks).
//! * [`tape`] — the [`tape::Randomness`] abstraction: a *deterministic
//!   function* from `(node, stream, index)` to random words.  Randomized
//!   executions use a seeded cryptographic stream ([`tape::CryptoTape`]);
//!   derandomized executions substitute a PRG keyed by a short seed chosen
//!   by the method of conditional expectations (supplied by `parcolor-prg`
//!   through the same trait).
//! * [`engine`] — a synchronous round engine with round/message metrics,
//!   used to run LOCAL procedures and to charge their simulation cost.
//!
//! The design follows the session's HPC guides: data-parallel loops are
//! expressed with rayon over disjoint per-node slices (data-race freedom by
//! construction), hot paths avoid per-node allocation (flat arenas +
//! offsets), and all cross-thread accumulation uses reductions rather than
//! shared mutable state.

pub mod engine;
pub mod graph;
pub mod message;
pub mod power;
pub mod simd;
#[cfg(all(unix, target_endian = "little"))]
pub mod store;
pub mod tape;

pub use engine::{LocalMetrics, RoundEngine};
pub use graph::{Graph, GraphBuilder, NodeId, StreamBuilder};
#[cfg(all(unix, target_endian = "little"))]
pub use store::{MappedCsr, Mmap};
pub use tape::{CryptoTape, Randomness, SplitMix};
