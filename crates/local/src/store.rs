//! Zero-copy mmap-backed CSR storage.
//!
//! A [`crate::graph::Graph`] normally owns its two CSR arrays on the
//! heap.  For million-node instances loaded from the binary `.pcg`
//! on-disk format (see `parcolor-cli`'s `pcg` module for the container
//! layout) the arrays can instead be **borrowed straight out of a
//! read-only memory map**: [`MappedCsr`] pins a page-aligned [`Mmap`]
//! and reinterprets two byte ranges of it as the `u64` offsets array and
//! the `u32` adjacency array.  No copy, no parse — the kernel pages the
//! graph in on demand, and several `Graph` clones share one mapping
//! through an `Arc`.
//!
//! ## The `GraphStore` contract
//!
//! `Graph` accessors (`neighbors`, `degree`, `offsets`, `adj`, …) are
//! storage-agnostic: every query goes through two slice getters that
//! resolve to either the owned vectors or the mapped ranges.  The two
//! storages must be observationally identical — the scale bench and the
//! `.pcg` roundtrip tests assert bit-identical solver output over both.
//!
//! This module is only compiled on little-endian unix targets: the
//! `.pcg` payload is little-endian, so a zero-copy reinterpretation is
//! only correct there.  Other targets fall back to the owned-heap
//! loading path (the codec in `parcolor-cli` handles that portably).
//!
//! ## Safety notes
//!
//! * The mapping is `PROT_READ | MAP_PRIVATE`; nothing ever writes
//!   through it.
//! * Alignment: `mmap` returns page-aligned memory and [`MappedCsr::new`]
//!   checks that both array byte-offsets are aligned for their element
//!   type, so the slice reinterpretations are sound.
//! * Truncating or rewriting the underlying file while it is mapped is
//!   undefined behavior at the OS level (`SIGBUS` on access).  The CLI
//!   treats `.pcg` files as immutable artifacts; the checksum in the
//!   header is verified at load time, which also faults every page in
//!   once and so surfaces I/O problems eagerly rather than mid-solve.

use std::fs::File;
use std::os::unix::io::AsRawFd;
use std::sync::Arc;

mod sys {
    use std::os::raw::{c_int, c_void};
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
}

/// A read-only, page-aligned memory mapping of a whole file.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime,
// so shared access from any thread is fine.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map the entire `file` read-only.
    pub fn map_file(file: &File) -> Result<Mmap, String> {
        let len = file
            .metadata()
            .map_err(|e| format!("mmap: cannot stat file: {e}"))?
            .len();
        if len == 0 {
            return Err("mmap: refusing to map an empty file".into());
        }
        let len = usize::try_from(len).map_err(|_| "mmap: file too large for this platform")?;
        // SAFETY: plain read-only file mapping; failure is reported via
        // the MAP_FAILED sentinel, checked below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err("mmap: kernel refused the mapping".into());
        }
        Ok(Mmap {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live PROT_READ mapping.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mapped length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true: empty files are
    /// rejected at map time).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: exactly the range returned by mmap in map_file.
        unsafe {
            sys::munmap(self.ptr as *mut _, self.len);
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

/// CSR arrays viewed zero-copy inside a shared [`Mmap`].
#[derive(Clone, Debug)]
pub struct MappedCsr {
    map: Arc<Mmap>,
    offsets_at: usize,
    n_plus_1: usize,
    adj_at: usize,
    adj_len: usize,
}

impl MappedCsr {
    /// View `map[offsets_at..]` as `n_plus_1` little-endian `u64`s and
    /// `map[adj_at..]` as `adj_len` little-endian `u32`s.  Checks bounds
    /// and alignment; the *structural* CSR invariants are checked by
    /// [`crate::graph::Graph::from_mapped`].
    pub fn new(
        map: Arc<Mmap>,
        offsets_at: usize,
        n_plus_1: usize,
        adj_at: usize,
        adj_len: usize,
    ) -> Result<MappedCsr, String> {
        let off_bytes = n_plus_1
            .checked_mul(8)
            .ok_or("mapped csr: offsets length overflow")?;
        let adj_bytes = adj_len
            .checked_mul(4)
            .ok_or("mapped csr: adj length overflow")?;
        if n_plus_1 == 0 {
            return Err("mapped csr: empty offsets array".into());
        }
        let off_end = offsets_at
            .checked_add(off_bytes)
            .ok_or("mapped csr: offsets range overflow")?;
        let adj_end = adj_at
            .checked_add(adj_bytes)
            .ok_or("mapped csr: adj range overflow")?;
        if off_end > map.len() || adj_end > map.len() {
            return Err("mapped csr: arrays exceed the mapped file".into());
        }
        let base = map.as_slice().as_ptr() as usize;
        if !(base + offsets_at).is_multiple_of(std::mem::align_of::<u64>()) {
            return Err("mapped csr: offsets array is not 8-byte aligned".into());
        }
        if !(base + adj_at).is_multiple_of(std::mem::align_of::<u32>()) {
            return Err("mapped csr: adj array is not 4-byte aligned".into());
        }
        Ok(MappedCsr {
            map,
            offsets_at,
            n_plus_1,
            adj_at,
            adj_len,
        })
    }

    /// The offsets array (`n + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        // SAFETY: bounds and 8-alignment checked in `new`; the target is
        // little-endian (module-level cfg), so the byte reinterpretation
        // reads the on-disk values exactly.
        unsafe {
            std::slice::from_raw_parts(
                self.map.as_slice().as_ptr().add(self.offsets_at) as *const u64,
                self.n_plus_1,
            )
        }
    }

    /// The concatenated adjacency array.
    #[inline]
    pub fn adj(&self) -> &[u32] {
        // SAFETY: bounds and 4-alignment checked in `new`; little-endian
        // target per the module cfg.
        unsafe {
            std::slice::from_raw_parts(
                self.map.as_slice().as_ptr().add(self.adj_at) as *const u32,
                self.adj_len,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(bytes: &[u8]) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "parcolor-store-test-{}-{}",
            std::process::id(),
            bytes.len()
        ));
        let mut f = File::create(&path).expect("create temp file");
        f.write_all(bytes).expect("write temp file");
        drop(f);
        (path.clone(), File::open(&path).expect("reopen"))
    }

    #[test]
    fn maps_and_reinterprets_le_arrays() {
        let mut bytes = Vec::new();
        // Two u64 offsets [0, 2] at 0, then two u32 adj [1, 0] at 16.
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let (path, f) = tmp_file(&bytes);
        let map = Arc::new(Mmap::map_file(&f).unwrap());
        let csr = MappedCsr::new(map, 0, 2, 16, 2).unwrap();
        assert_eq!(csr.offsets(), &[0, 2]);
        assert_eq!(csr.adj(), &[1, 0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_out_of_bounds_and_misaligned() {
        let (path, f) = tmp_file(&[0u8; 64]);
        let map = Arc::new(Mmap::map_file(&f).unwrap());
        assert!(MappedCsr::new(map.clone(), 0, 9, 0, 0).is_err(), "past end");
        assert!(
            MappedCsr::new(map.clone(), 4, 2, 0, 0).is_err(),
            "u64 misaligned"
        );
        assert!(
            MappedCsr::new(map.clone(), 0, 0, 0, 0).is_err(),
            "empty offsets"
        );
        assert!(
            MappedCsr::new(map.clone(), 0, 2, 62, 2).is_err(),
            "adj past end"
        );
        assert!(MappedCsr::new(map, 0, 2, 17, 1).is_err(), "u32 misaligned");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_file_is_refused() {
        let (path, f) = tmp_file(&[]);
        assert!(Mmap::map_file(&f).is_err());
        std::fs::remove_file(path).ok();
    }
}
