//! A genuine synchronous message-passing executor for the LOCAL model.
//!
//! The coloring procedures in `parcolor-core` are written as whole-graph
//! data-parallel passes (the natural rayon shape) that *account* their
//! LOCAL round cost.  This module provides the ground truth those passes
//! are compared against: nodes hold private state, exchange messages with
//! neighbors in synchronous rounds through real mailboxes, and cannot see
//! anything else.  The cross-check test
//! (`integration_framework::message_passing_matches_pass_implementation`)
//! runs `TryRandomColor` both ways under the same randomness tape and
//! requires identical outcomes.

use crate::graph::{Graph, NodeId};
use crate::tape::Randomness;
use rayon::prelude::*;

/// A node-level synchronous message-passing algorithm.
///
/// Each round, every live node consumes its inbox, updates its private
/// state, and emits messages to *neighbors only* (enforced by the
/// executor — the LOCAL model has no other channels).
pub trait MessageAlgorithm: Sync {
    /// Per-node private state.
    type State: Clone + Send + Sync;
    /// Message payload.
    type Msg: Clone + Send + Sync;

    /// Initial state of `v`.
    fn init(&self, v: NodeId) -> Self::State;

    /// One synchronous round for `v`.  `inbox` holds `(sender, payload)`
    /// pairs from the previous round (empty in round 0).  Returns the
    /// outgoing messages as `(neighbor, payload)`.
    fn round(
        &self,
        v: NodeId,
        round: u32,
        state: &mut Self::State,
        inbox: &[(NodeId, Self::Msg)],
        rng: &dyn Randomness,
    ) -> Vec<(NodeId, Self::Msg)>;

    /// Whether `v` has terminated (stops receiving rounds; its last state
    /// is the output).
    fn done(&self, state: &Self::State) -> bool;
}

/// Result of a message-passing execution.
pub struct MessageRun<S> {
    /// Final per-node states.
    pub states: Vec<S>,
    /// Synchronous rounds executed.
    pub rounds: u32,
    /// Total messages delivered.
    pub messages: u64,
}

/// Execute `algo` on `g` until every node is done or `max_rounds` elapse.
/// Message destinations are checked against the adjacency lists — an
/// algorithm attempting non-neighbor delivery panics (it would be
/// cheating the LOCAL model).
pub fn run_message_passing<A: MessageAlgorithm>(
    g: &Graph,
    algo: &A,
    rng: &dyn Randomness,
    max_rounds: u32,
) -> MessageRun<A::State> {
    let n = g.n();
    let mut states: Vec<A::State> = (0..n as NodeId).map(|v| algo.init(v)).collect();
    let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = vec![Vec::new(); n];
    let mut rounds = 0u32;
    let mut messages = 0u64;
    for round in 0..max_rounds {
        if states.par_iter().all(|s| algo.done(s)) {
            break;
        }
        rounds = round + 1;
        // Compute all outgoing messages in parallel (each node owns its
        // state slot and reads only its own inbox).
        let outgoing: Vec<Vec<(NodeId, A::Msg)>> = states
            .par_iter_mut()
            .enumerate()
            .map(|(v, state)| {
                let v = v as NodeId;
                if algo.done(state) {
                    return Vec::new();
                }
                let out = algo.round(v, round, state, &inboxes[v as usize], rng);
                for &(dest, _) in &out {
                    assert!(
                        g.has_edge(v, dest),
                        "LOCAL violation: {v} sent to non-neighbor {dest}"
                    );
                }
                out
            })
            .collect();
        // Deliver.
        for inbox in inboxes.iter_mut() {
            inbox.clear();
        }
        for (sender, out) in outgoing.into_iter().enumerate() {
            for (dest, payload) in out {
                messages += 1;
                inboxes[dest as usize].push((sender as NodeId, payload));
            }
        }
    }
    MessageRun {
        states,
        rounds,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::CryptoTape;

    /// Flood: every node learns the minimum id in its component (the
    /// algorithm carries a graph handle so nodes can enumerate their
    /// neighbors when broadcasting).
    struct MinFloodWired<'a> {
        g: &'a Graph,
    }

    impl MessageAlgorithm for MinFloodWired<'_> {
        type State = (u32, bool);
        type Msg = u32;

        fn init(&self, v: NodeId) -> Self::State {
            (v, true)
        }

        fn round(
            &self,
            v: NodeId,
            _round: u32,
            state: &mut Self::State,
            inbox: &[(NodeId, u32)],
            _rng: &dyn Randomness,
        ) -> Vec<(NodeId, u32)> {
            let incoming = inbox.iter().map(|&(_, m)| m).min();
            let improved = matches!(incoming, Some(m) if m < state.0);
            if improved {
                state.0 = incoming.unwrap();
            }
            if state.1 || improved {
                state.1 = false;
                self.g.neighbors(v).iter().map(|&u| (u, state.0)).collect()
            } else {
                Vec::new()
            }
        }

        fn done(&self, _state: &Self::State) -> bool {
            false
        }
    }

    fn ring(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as NodeId)
            .map(|i| (i, (i + 1) % n as NodeId))
            .collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn min_flood_converges_in_diameter_rounds() {
        let g = ring(16);
        let algo = MinFloodWired { g: &g };
        let run = run_message_passing(&g, &algo, &CryptoTape::new(0), 16);
        assert!(
            run.states.iter().all(|&(m, _)| m == 0),
            "{:?}",
            run.states.iter().map(|s| s.0).collect::<Vec<_>>()
        );
        assert!(run.messages > 0);
    }

    #[test]
    fn insufficient_rounds_leave_far_nodes_ignorant() {
        let g = ring(32);
        let algo = MinFloodWired { g: &g };
        let run = run_message_passing(&g, &algo, &CryptoTape::new(0), 3);
        // Node 16 is 16 hops from node 0: cannot have learned 0 yet.
        assert_ne!(run.states[16].0, 0);
    }

    #[test]
    #[should_panic(expected = "LOCAL violation")]
    fn non_neighbor_send_panics() {
        struct Cheater;
        impl MessageAlgorithm for Cheater {
            type State = ();
            type Msg = ();
            fn init(&self, _v: NodeId) -> Self::State {}
            fn round(
                &self,
                v: NodeId,
                _round: u32,
                _state: &mut Self::State,
                _inbox: &[(NodeId, ())],
                _rng: &dyn Randomness,
            ) -> Vec<(NodeId, ())> {
                vec![((v + 2) % 4, ())] // distance 2 on a 4-ring
            }
            fn done(&self, _state: &Self::State) -> bool {
                false
            }
        }
        let g = ring(4);
        run_message_passing(&g, &Cheater, &CryptoTape::new(0), 1);
    }

    #[test]
    fn all_done_terminates_early() {
        struct Lazy;
        impl MessageAlgorithm for Lazy {
            type State = ();
            type Msg = ();
            fn init(&self, _v: NodeId) -> Self::State {}
            fn round(
                &self,
                _v: NodeId,
                _round: u32,
                _state: &mut Self::State,
                _inbox: &[(NodeId, ())],
                _rng: &dyn Randomness,
            ) -> Vec<(NodeId, ())> {
                Vec::new()
            }
            fn done(&self, _state: &Self::State) -> bool {
                true
            }
        }
        let g = ring(8);
        let run = run_message_passing(&g, &Lazy, &CryptoTape::new(0), 100);
        assert_eq!(run.rounds, 0);
        assert_eq!(run.messages, 0);
    }
}
