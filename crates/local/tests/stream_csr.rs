//! The streaming two-pass CSR builder must be **bit-identical** to the
//! edge-list [`GraphBuilder`] path on arbitrary inputs: same offsets
//! array, same adjacency array, for any mix of duplicate edges and
//! orientations.  This is the contract the scale bench and the `.pcg`
//! pipeline rely on.

use parcolor_local::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;

fn build_both(n: usize, edges: &[(NodeId, NodeId)]) -> (Graph, Graph) {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    let built = b.build();
    let streamed = Graph::from_edge_stream(n, |sink| {
        for &(u, v) in edges {
            sink(u, v);
        }
    });
    (built, streamed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stream_built_equals_builder_built(
        n in 2usize..80,
        raw in proptest::collection::vec((0u32..1 << 16, 0u32..1 << 16), 0..400),
    ) {
        let base: Vec<(NodeId, NodeId)> = raw
            .iter()
            .map(|&(a, b)| (a % n as u32, b % n as u32))
            .filter(|&(u, v)| u != v)
            .collect();
        // Duplicate every third edge with flipped orientation so the
        // dedup compaction path is always exercised.
        let mut edges = Vec::with_capacity(base.len() * 2);
        for (i, &(u, v)) in base.iter().enumerate() {
            edges.push((u, v));
            if i % 3 == 0 {
                edges.push((v, u));
            }
        }
        let (built, streamed) = build_both(n, &edges);
        prop_assert_eq!(streamed.offsets(), built.offsets());
        prop_assert_eq!(streamed.adj(), built.adj());
        prop_assert!(streamed.validate().is_ok());
        prop_assert_eq!(&streamed, &built);
    }
}

#[test]
fn stream_builder_collapses_duplicates_and_orientations() {
    let edges = [(0u32, 1u32), (1, 0), (0, 1), (1, 2), (2, 1), (3, 1)];
    let g = Graph::from_edge_stream(5, |sink| {
        for &(u, v) in &edges {
            sink(u, v);
        }
    });
    assert_eq!(g.n(), 5);
    assert_eq!(g.m(), 3);
    assert_eq!(g.neighbors(1), &[0, 2, 3]);
    assert_eq!(g.degree(4), 0);
    assert!(g.validate().is_ok());
}

#[test]
#[should_panic(expected = "edge stream changed between passes")]
fn non_rerunnable_stream_is_caught() {
    use std::cell::Cell;
    let pass = Cell::new(0u32);
    Graph::from_edge_stream(4, |sink| {
        pass.set(pass.get() + 1);
        sink(0, 1);
        if pass.get() == 1 {
            sink(2, 3); // vanishes on the replay pass
        }
    });
}

/// A large enough instance to push `sort_rows` onto the pool path
/// (adjacency above the 1<<14 sequential floor).
#[test]
fn large_stream_matches_builder_on_pool_path() {
    let n = 5000usize;
    let m = 40_000usize;
    let edge = |i: u64| {
        // splitmix-style hash: deterministic, re-runnable.
        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        let u = (z % n as u64) as NodeId;
        let v = ((z >> 32) % n as u64) as NodeId;
        (u, v)
    };
    let streamed = Graph::from_edge_stream(n, |sink| {
        for i in 0..m as u64 {
            let (u, v) = edge(i);
            if u != v {
                sink(u, v);
            }
        }
    });
    let mut b = GraphBuilder::new(n);
    for i in 0..m as u64 {
        let (u, v) = edge(i);
        if u != v {
            b.add_edge(u, v);
        }
    }
    let built = b.build();
    assert_eq!(streamed.offsets(), built.offsets());
    assert_eq!(streamed.adj(), built.adj());
}
