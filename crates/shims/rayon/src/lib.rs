//! Sequential, API-compatible stand-in for the `rayon` crate.
//!
//! The build environment for this repository has no network access and no
//! vendored crates.io sources, so the real rayon cannot be compiled in.
//! This shim keeps the workspace's `par_iter()` / `into_par_iter()` call
//! sites compiling unchanged by mapping each parallel combinator onto the
//! equivalent *sequential* `std::iter` machinery.
//!
//! Consequences, deliberately chosen:
//!
//! * **Determinism is exact.**  Everything runs in program order, so all
//!   "parallel" reductions are bit-reproducible — stronger than rayon's
//!   own guarantee and convenient for the derandomization tests.
//! * **No speedup from these call sites.**  Genuine multi-threading in
//!   this workspace is concentrated in the seed-search hot loop
//!   (`parcolor-prg::seed_search`), which spawns scoped `std::thread`s
//!   directly rather than going through this shim.
//!
//! Only the surface actually used by the workspace is provided; this is
//! not a general rayon replacement.

/// The traits user code expects from `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSliceMut,
    };
}

/// Extension methods that exist on rayon's `ParallelIterator` but not on
/// `std::iter::Iterator`.  Blanket-implemented for every iterator so that
/// chains built from `par_iter()`/`into_par_iter()` keep compiling.
pub trait ParallelIterator: Iterator + Sized {
    /// First item matching `predicate` in iteration order (rayon: first in
    /// the original order, which sequential execution gives for free).
    fn find_first<P: FnMut(&Self::Item) -> bool>(mut self, predicate: P) -> Option<Self::Item> {
        self.find(predicate)
    }

    /// rayon's serial-flattening `flat_map`; identical to `flat_map` here.
    fn flat_map_iter<U: IntoIterator, F: FnMut(Self::Item) -> U>(
        self,
        f: F,
    ) -> std::iter::FlatMap<Self, U, F> {
        self.flat_map(f)
    }

    /// Map with a per-"thread" state initialized by `init` (one state total
    /// in this sequential shim — exactly rayon's semantics collapsed to a
    /// single worker).
    fn map_init<INIT, T, R, F>(self, init: INIT, f: F) -> MapInit<Self, T, F>
    where
        INIT: FnOnce() -> T,
        F: FnMut(&mut T, Self::Item) -> R,
    {
        MapInit {
            iter: self,
            state: init(),
            f,
        }
    }

    /// Splitting hint; meaningless without work stealing.
    fn with_min_len(self, _len: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// Iterator adapter backing [`ParallelIterator::map_init`].
pub struct MapInit<I, T, F> {
    iter: I,
    state: T,
    f: F,
}

impl<I: Iterator, T, R, F: FnMut(&mut T, I::Item) -> R> Iterator for MapInit<I, T, F> {
    type Item = R;

    fn next(&mut self) -> Option<R> {
        let item = self.iter.next()?;
        Some((self.f)(&mut self.state, item))
    }
}

/// `into_par_iter()` for any owned collection / range.
pub trait IntoParallelIterator {
    /// The underlying sequential iterator type.
    type Iter: Iterator;
    /// Convert into a ("parallel") iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> I::IntoIter {
        self.into_iter()
    }
}

/// `par_iter()` on slices (and everything that derefs to a slice).
pub trait IntoParallelRefIterator {
    /// Element type.
    type Item;
    /// Borrowing ("parallel") iterator over the elements.
    fn par_iter(&self) -> std::slice::Iter<'_, Self::Item>;
}

impl<T> IntoParallelRefIterator for [T] {
    type Item = T;

    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// `par_iter_mut()` on slices.
pub trait IntoParallelRefMutIterator {
    /// Element type.
    type Item;
    /// Mutably borrowing ("parallel") iterator over the elements.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, Self::Item>;
}

impl<T> IntoParallelRefMutIterator for [T] {
    type Item = T;

    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// Parallel slice sorts.
pub trait ParallelSliceMut<T> {
    /// Unstable sort (sequential `sort_unstable` here).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable()
    }
}

/// Number of worker threads rayon would use.  The shim executes
/// sequentially, so this is 1 by definition.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn combinators_compile_and_agree_with_std() {
        let v: Vec<u32> = (0..10u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10u32).map(|x| x * 2).collect::<Vec<_>>());
        let s: u32 = v.par_iter().copied().sum();
        assert_eq!(s, 90);
        let mut w = vec![3u32, 1, 2];
        w.par_sort_unstable();
        assert_eq!(w, vec![1, 2, 3]);
        let found = (0..100u64).into_par_iter().find_first(|&x| x > 41);
        assert_eq!(found, Some(42));
    }

    #[test]
    fn map_init_reuses_state() {
        let out: Vec<usize> = (0..5u32)
            .into_par_iter()
            .map_init(Vec::<u32>::new, |buf, x| {
                buf.push(x);
                buf.len()
            })
            .collect();
        // One shared state in the sequential shim: lengths grow.
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }
}
