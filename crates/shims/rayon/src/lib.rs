//! API-compatible stand-in for the `rayon` crate, backed by the
//! workspace's persistent work-stealing executor (`parcolor-exec`).
//!
//! The build environment for this repository has no network access and no
//! vendored crates.io sources, so the real rayon cannot be compiled in.
//! This shim keeps the workspace's `par_iter()` / `into_par_iter()` call
//! sites compiling — but unlike its earlier fully-sequential incarnation,
//! the reduction terminal now genuinely runs multicore:
//!
//! * **`fold(||id, op).reduce(||id, op)` is parallel.**  The two-closure
//!   rayon shape is driven through [`parcolor_exec::par_fold`]: workers
//!   steal index blocks off one shared counter, fold each block with the
//!   per-split identity, and merge partials with the reduce operator.
//!   This matches rayon's fold-per-split semantics, so the usual rayon
//!   caveat applies verbatim: the operators must be grouping-invariant
//!   (associative + commutative with a neutral identity) for the result
//!   to be deterministic.  Every fold in this workspace reduces
//!   integer-valued counts, which qualify exactly.
//! * **`par_sort_unstable` is parallel.**  Slices are cut into fixed
//!   stripes sorted by stealing workers and merged in pairwise parallel
//!   rounds ([`parcolor_exec::par_sort_unstable`]); the output is the
//!   sorted permutation, so it is bit-identical at every worker count
//!   with no operator caveats at all.
//! * **Everything else is sequential in source order.**  `collect`,
//!   `for_each`, `sum`, `max`, `all`, `find_first`, … walk the index
//!   space `0..len` in order, so they are bit-reproducible and
//!   `find_first`/tie-breaks trivially match rayon's "first in original
//!   order" guarantee.  Small inputs never touch the pool: parallel
//!   reduces below [`MIN_PARALLEL_LEN`] take the same sequential walk.
//!
//! Parallel roots are **ranges** (`(0..n).into_par_iter()`) and **slice
//! borrows** (`slice.par_iter()`).  Owned `Vec`s (`vec.into_par_iter()`)
//! and `par_iter_mut()` deliberately stay on plain `std` iterators: the
//! workspace only uses them for machine-count-sized outer loops, and a
//! `std` receiver keeps `zip`/`enumerate`/`map` with `FnMut` closures
//! working unchanged.
//!
//! Genuine multi-threading elsewhere in the workspace (seed search,
//! striped round simulation) calls `parcolor-exec` directly rather than
//! going through this shim.  Only the surface actually used by the
//! workspace is provided; this is not a general rayon replacement.

use std::ops::Range;

/// Below this many source indices a `fold().reduce()` stays sequential —
/// pool scheduling would cost more than the walk.
pub const MIN_PARALLEL_LEN: usize = 4096;

/// Block size (in source indices) stolen at a time by parallel reduces.
const FOLD_BLOCK: usize = 1024;

/// The traits user code expects from `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// Number of worker threads the executor resolves for auto (`0`)
/// requests: `PARCOLOR_THREADS`, then the deprecated
/// `PARCOLOR_SEED_THREADS` alias, else all hardware threads.
pub fn current_num_threads() -> usize {
    parcolor_exec::resolve_workers(0)
}

// ---------------------------------------------------------------------
// The parallel-iterator framework
// ---------------------------------------------------------------------

/// A data-parallel pipeline over a fixed index space `0..par_len()`.
///
/// Unlike the previous shim, these are *not* `std` iterators: adapters
/// form a pull-free "drive" pipeline — `drive(range, sink)` pushes the
/// items originating from the given source-index range into `sink` —
/// which is what lets the `fold().reduce()` terminal evaluate disjoint
/// index blocks from multiple pool workers.
pub trait ParallelIterator: Sized {
    /// The element type of the pipeline.
    type Item;

    /// Number of *source* indices feeding the pipeline (items produced
    /// may be fewer — `filter` — or more — `flat_map_iter`).
    fn par_len(&self) -> usize;

    /// Push every item originating from source indices `range` into
    /// `sink`, in ascending source order.  The first argument to the
    /// sink is the originating source index (used by `enumerate`).
    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, Self::Item));

    // ---- adapters -------------------------------------------------

    /// Map each item through `f`.
    fn map<R, F: Fn(Self::Item) -> R>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Keep items satisfying `p`.
    fn filter<P: Fn(&Self::Item) -> bool>(self, p: P) -> Filter<Self, P> {
        Filter { inner: self, p }
    }

    /// Map-and-keep-`Some` in one pass.
    fn filter_map<R, F: Fn(Self::Item) -> Option<R>>(self, f: F) -> FilterMap<Self, F> {
        FilterMap { inner: self, f }
    }

    /// rayon's serially-flattening `flat_map`: each item expands to a
    /// sequential iterator, spliced in source order.
    fn flat_map_iter<U: IntoIterator, F: Fn(Self::Item) -> U>(self, f: F) -> FlatMapIter<Self, F> {
        FlatMapIter { inner: self, f }
    }

    /// Copy referenced items out (rayon's `copied`).
    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Copy + 'a,
    {
        Copied { inner: self }
    }

    /// Pair each item with its **source index** — identical to rayon's
    /// `enumerate` for the indexed roots it is used on (ranges, slices).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Pair lockstep with another indexed pipeline; length is the
    /// shorter of the two.
    fn zip<Z: IndexedParallelIterator>(self, other: Z) -> Zip<Self, Z>
    where
        Self: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Splitting hint; the executor steals fixed blocks, so this is a
    /// no-op kept for API compatibility.
    fn with_min_len(self, _len: usize) -> Self {
        self
    }

    // ---- sequential terminals ------------------------------------

    /// Collect into any `Default + Extend` container, in source order.
    fn collect<C: Default + Extend<Self::Item>>(self) -> C {
        let mut out = C::default();
        let len = self.par_len();
        self.drive(0..len, &mut |_, item| out.extend(std::iter::once(item)));
        out
    }

    /// Apply `f` to every item, in source order.
    fn for_each<F: Fn(Self::Item)>(self, f: F) {
        let len = self.par_len();
        self.drive(0..len, &mut |_, item| f(item));
    }

    /// Number of items produced.
    fn count(self) -> usize {
        let mut n = 0usize;
        let len = self.par_len();
        self.drive(0..len, &mut |_, _| n += 1);
        n
    }

    /// Sum of all items, as a flat left-to-right fold in source order —
    /// bit-identical to the `std` walk even for floats.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        let mut items = Vec::new();
        let len = self.par_len();
        self.drive(0..len, &mut |_, item| items.push(item));
        items.into_iter().sum()
    }

    /// Maximum item (`std` semantics: the last of equal maxima).
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let mut best: Option<Self::Item> = None;
        let len = self.par_len();
        self.drive(0..len, &mut |_, item| {
            if best.as_ref().is_none_or(|b| &item >= b) {
                best = Some(item);
            }
        });
        best
    }

    /// Whether every item satisfies `p` (early-exits between blocks).
    fn all<P: Fn(Self::Item) -> bool>(self, p: P) -> bool {
        let len = self.par_len();
        let mut ok = true;
        let mut s = 0;
        while s < len && ok {
            let e = (s + FOLD_BLOCK).min(len);
            self.drive(s..e, &mut |_, item| {
                if ok && !p(item) {
                    ok = false;
                }
            });
            s = e;
        }
        ok
    }

    /// Whether any item satisfies `p` (early-exits between blocks).
    fn any<P: Fn(Self::Item) -> bool>(self, p: P) -> bool {
        let len = self.par_len();
        let mut hit = false;
        let mut s = 0;
        while s < len && !hit {
            let e = (s + FOLD_BLOCK).min(len);
            self.drive(s..e, &mut |_, item| {
                if !hit && p(item) {
                    hit = true;
                }
            });
            s = e;
        }
        hit
    }

    /// First item (in source order) satisfying `p` — rayon's guarantee,
    /// free here because the walk is ordered (early-exits between
    /// blocks).
    fn find_first<P: Fn(&Self::Item) -> bool>(self, p: P) -> Option<Self::Item> {
        let len = self.par_len();
        let mut found: Option<Self::Item> = None;
        let mut s = 0;
        while s < len && found.is_none() {
            let e = (s + FOLD_BLOCK).min(len);
            self.drive(s..e, &mut |_, item| {
                if found.is_none() && p(&item) {
                    found = Some(item);
                }
            });
            s = e;
        }
        found
    }

    // ---- the parallel terminal -----------------------------------

    /// rayon's two-closure fold: each split starts from `identity()` and
    /// folds its items with `fold_op`, yielding a pipeline of partial
    /// accumulators for [`Fold::reduce`] to merge.  This is the ONE
    /// terminal that runs on the executor pool — see the crate docs for
    /// the grouping-invariance requirement that implies.
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        ID: Fn() -> T,
        F: Fn(T, Self::Item) -> T,
    {
        Fold {
            inner: self,
            identity,
            fold_op,
        }
    }
}

/// Pipelines with O(1) random access by source index (ranges, slices,
/// and index-preserving adapters over them); required by `zip`.
pub trait IndexedParallelIterator: ParallelIterator {
    /// The item originating from source index `i` (`i < par_len()`).
    fn at(&self, i: usize) -> Self::Item;
}

// ---- adapter types --------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I: ParallelIterator, R, F: Fn(I::Item) -> R> ParallelIterator for Map<I, F> {
    type Item = R;

    fn par_len(&self) -> usize {
        self.inner.par_len()
    }

    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, R)) {
        let f = &self.f;
        self.inner.drive(range, &mut |i, item| sink(i, f(item)));
    }
}

impl<I: IndexedParallelIterator, R, F: Fn(I::Item) -> R> IndexedParallelIterator for Map<I, F> {
    fn at(&self, i: usize) -> R {
        (self.f)(self.inner.at(i))
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<I, P> {
    inner: I,
    p: P,
}

impl<I: ParallelIterator, P: Fn(&I::Item) -> bool> ParallelIterator for Filter<I, P> {
    type Item = I::Item;

    fn par_len(&self) -> usize {
        self.inner.par_len()
    }

    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, I::Item)) {
        let p = &self.p;
        self.inner.drive(range, &mut |i, item| {
            if p(&item) {
                sink(i, item);
            }
        });
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<I, F> {
    inner: I,
    f: F,
}

impl<I: ParallelIterator, R, F: Fn(I::Item) -> Option<R>> ParallelIterator for FilterMap<I, F> {
    type Item = R;

    fn par_len(&self) -> usize {
        self.inner.par_len()
    }

    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, R)) {
        let f = &self.f;
        self.inner.drive(range, &mut |i, item| {
            if let Some(r) = f(item) {
                sink(i, r);
            }
        });
    }
}

/// See [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<I, F> {
    inner: I,
    f: F,
}

impl<I: ParallelIterator, U: IntoIterator, F: Fn(I::Item) -> U> ParallelIterator
    for FlatMapIter<I, F>
{
    type Item = U::Item;

    fn par_len(&self) -> usize {
        self.inner.par_len()
    }

    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, U::Item)) {
        let f = &self.f;
        self.inner.drive(range, &mut |i, item| {
            for x in f(item) {
                sink(i, x);
            }
        });
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<I> {
    inner: I,
}

impl<'a, T: Copy + 'a, I: ParallelIterator<Item = &'a T>> ParallelIterator for Copied<I> {
    type Item = T;

    fn par_len(&self) -> usize {
        self.inner.par_len()
    }

    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, T)) {
        self.inner.drive(range, &mut |i, item| sink(i, *item));
    }
}

impl<'a, T: Copy + 'a, I: IndexedParallelIterator<Item = &'a T>> IndexedParallelIterator
    for Copied<I>
{
    fn at(&self, i: usize) -> T {
        *self.inner.at(i)
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn par_len(&self) -> usize {
        self.inner.par_len()
    }

    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, (usize, I::Item))) {
        self.inner.drive(range, &mut |i, item| sink(i, (i, item)));
    }
}

impl<I: IndexedParallelIterator> IndexedParallelIterator for Enumerate<I> {
    fn at(&self, i: usize) -> (usize, I::Item) {
        (i, self.inner.at(i))
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedParallelIterator, B: IndexedParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }

    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, (A::Item, B::Item))) {
        let end = range.end.min(self.par_len());
        for i in range.start..end {
            sink(i, (self.a.at(i), self.b.at(i)));
        }
    }
}

// ---- the parallel fold/reduce terminal ------------------------------

/// Pending two-closure fold; [`Fold::reduce`] merges the per-split
/// partials — on the executor pool when the index space is large enough.
pub struct Fold<I, ID, F> {
    inner: I,
    identity: ID,
    fold_op: F,
}

impl<I, T, ID, F> Fold<I, ID, F>
where
    I: ParallelIterator + Sync,
    T: Send,
    ID: Fn() -> T + Sync,
    F: Fn(T, I::Item) -> T + Sync,
{
    /// Merge the fold's per-split partials with `reduce_op`, starting
    /// from `reduce_identity`.  Deterministic at every worker count iff
    /// the operators are grouping-invariant (see the crate docs).
    pub fn reduce<RID, R>(self, reduce_identity: RID, reduce_op: R) -> T
    where
        RID: Fn() -> T + Sync,
        R: Fn(T, T) -> T + Sync,
    {
        let len = self.inner.par_len();
        let workers = parcolor_exec::resolve_workers(0)
            .min(len / FOLD_BLOCK)
            .max(1);
        if len < MIN_PARALLEL_LEN || workers <= 1 {
            // One split: fold everything sequentially.
            let mut acc = Some((self.identity)());
            self.inner.drive(0..len, &mut |_, item| {
                let a = acc.take().expect("fold accumulator");
                acc = Some((self.fold_op)(a, item));
            });
            return reduce_op(reduce_identity(), acc.expect("fold accumulator"));
        }
        let inner = &self.inner;
        let identity = &self.identity;
        let fold_op = &self.fold_op;
        let reduce_op = &reduce_op;
        parcolor_exec::par_fold(
            parcolor_exec::Executor::global(),
            workers,
            0..len as u64,
            FOLD_BLOCK as u64,
            || (),
            &reduce_identity,
            |start, blen, acc: T, _scratch: &mut ()| {
                let mut block = Some(identity());
                inner.drive(start as usize..(start + blen) as usize, &mut |_, item| {
                    let b = block.take().expect("block accumulator");
                    block = Some(fold_op(b, item));
                });
                reduce_op(acc, block.expect("block accumulator"))
            },
            reduce_op,
        )
    }
}

// ---- parallel roots -------------------------------------------------

/// Parallel pipeline over an integer range (the root behind
/// `(0..n).into_par_iter()`).
pub struct ParRange<T> {
    start: T,
    len: usize,
}

macro_rules! par_range_impl {
    ($($ty:ty),*) => {$(
        impl ParallelIterator for ParRange<$ty> {
            type Item = $ty;

            fn par_len(&self) -> usize {
                self.len
            }

            fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, $ty)) {
                for i in range {
                    sink(i, self.start + i as $ty);
                }
            }
        }

        impl IndexedParallelIterator for ParRange<$ty> {
            fn at(&self, i: usize) -> $ty {
                self.start + i as $ty
            }
        }

        impl IntoParallelIterator for Range<$ty> {
            type Iter = ParRange<$ty>;

            fn into_par_iter(self) -> ParRange<$ty> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParRange { start: self.start, len }
            }
        }
    )*};
}

par_range_impl!(u32, u64, usize);

/// Parallel pipeline borrowing a slice (the root behind `par_iter()`).
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn drive(&self, range: Range<usize>, sink: &mut dyn FnMut(usize, &'a T)) {
        for i in range {
            sink(i, &self.slice[i]);
        }
    }
}

impl<'a, T> IndexedParallelIterator for ParSlice<'a, T> {
    fn at(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

// ---- entry-point traits ---------------------------------------------

/// `into_par_iter()` on owned collections and ranges.  Ranges become
/// parallel [`ParRange`] roots; owned `Vec`s stay plain `std` iterators
/// (machine-count-sized outer loops — see the crate docs).
pub trait IntoParallelIterator {
    /// The iterator type produced.
    type Iter;

    /// Convert into a (potentially parallel) iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> std::vec::IntoIter<T> {
        self.into_iter()
    }
}

/// `par_iter()` on slices (and everything that derefs to a slice).
pub trait IntoParallelRefIterator {
    /// Element type.
    type Item;

    /// Borrowing parallel pipeline over the elements.
    fn par_iter(&self) -> ParSlice<'_, Self::Item>;
}

impl<T> IntoParallelRefIterator for [T] {
    type Item = T;

    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
}

/// `par_iter_mut()` on slices.  Stays a `std` iterator: every workspace
/// use is a disjoint-row fill where sequential order is load-bearing
/// for reproducibility of the surrounding diagnostics.
pub trait IntoParallelRefMutIterator {
    /// Element type.
    type Item;

    /// Mutably borrowing iterator over the elements.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, Self::Item>;
}

impl<T> IntoParallelRefMutIterator for [T] {
    type Item = T;

    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// Parallel slice sorts.
pub trait ParallelSliceMut<T> {
    /// Unstable sort, pool-backed: sorted stripes + pairwise parallel
    /// merges via [`parcolor_exec::par_sort_unstable`].  The `Send +
    /// Copy` bounds (absent in real rayon, which only needs `Ord +
    /// Send`) let elements transit the merge scratch buffer by memcpy;
    /// every sort key in this workspace is a small integer tuple, so the
    /// narrowing is free here.  Output is the sorted permutation —
    /// bit-identical at every worker count.
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send + Sync + Copy;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send + Sync + Copy,
    {
        parcolor_exec::par_sort_unstable(
            parcolor_exec::Executor::global(),
            parcolor_exec::resolve_workers(0),
            self,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::MIN_PARALLEL_LEN;

    #[test]
    fn combinators_compile_and_agree_with_std() {
        let v: Vec<u32> = (0..10u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10u32).map(|x| x * 2).collect::<Vec<_>>());
        let s: u32 = v.par_iter().copied().sum();
        assert_eq!(s, 90);
        let mut w = vec![3u32, 1, 2];
        w.par_sort_unstable();
        assert_eq!(w, vec![1, 2, 3]);
        // Large enough to take the pool-backed stripe + merge path.
        let mut big: Vec<u32> = (0..40_000u32)
            .map(|i| i.wrapping_mul(2654435761) % 997)
            .collect();
        let mut expected = big.clone();
        expected.sort_unstable();
        big.par_sort_unstable();
        assert_eq!(big, expected);
        let found = (0..100u64).into_par_iter().find_first(|&x| x > 41);
        assert_eq!(found, Some(42));
        assert!((0..50u32).into_par_iter().all(|x| x < 50));
        assert!((0..50u32).into_par_iter().any(|x| x == 49));
        assert_eq!(
            (0..1000usize)
                .into_par_iter()
                .filter(|&x| x % 3 == 0)
                .count(),
            334
        );
        assert_eq!((0..7u32).into_par_iter().max(), Some(6));
        let fm: Vec<u32> = (0..4u32)
            .into_par_iter()
            .flat_map_iter(|x| vec![x, x + 10])
            .collect();
        assert_eq!(fm, vec![0, 10, 1, 11, 2, 12, 3, 13]);
    }

    #[test]
    fn enumerate_and_zip_are_index_aligned() {
        let xs = [10u32, 20, 30];
        let pairs: Vec<(usize, u32)> = xs
            .par_iter()
            .copied()
            .enumerate()
            .map(|(i, x)| (i, x))
            .collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30)]);
        let ys = [1u32, 2, 3, 4];
        let zipped: Vec<u32> = xs
            .par_iter()
            .zip(ys.par_iter())
            .map(|(&a, &b)| a + b)
            .collect();
        assert_eq!(zipped, vec![11, 22, 33]);
    }

    /// The executor-backed `fold().reduce()` must agree with the serial
    /// walk on a range large enough to take the parallel path.
    #[test]
    fn parallel_fold_reduce_matches_sequential() {
        let n = (4 * MIN_PARALLEL_LEN) as u64;
        let serial: (u64, u64) = (0..n)
            .map(|x| (1u64, x % 97))
            .fold((0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        let par = (0..n)
            .into_par_iter()
            .map(|x| (1u64, x % 97))
            .fold(|| (0u64, 0u64), |a, b| (a.0 + b.0, a.1 + b.1))
            .reduce(|| (0u64, 0u64), |a, b| (a.0 + b.0, a.1 + b.1));
        assert_eq!(par, serial);
    }

    /// A filtered parallel fold (the graphops shape) over a large range.
    #[test]
    fn filtered_fold_reduce_counts_exactly() {
        let n = (4 * MIN_PARALLEL_LEN) as u32;
        let (count, weight) = (0..n)
            .into_par_iter()
            .filter(|&v| v % 5 == 0)
            .map(|v| (1usize, (v % 11) as u64))
            .fold(|| (0usize, 0u64), |a, b| (a.0 + b.0, a.1 + b.1))
            .reduce(|| (0usize, 0u64), |a, b| (a.0 + b.0, a.1 + b.1));
        let serial: (usize, u64) = (0..n)
            .filter(|&v| v % 5 == 0)
            .map(|v| (1usize, (v % 11) as u64))
            .fold((0, 0), |a: (usize, u64), b| (a.0 + b.0, a.1 + b.1));
        assert_eq!((count, weight), serial);
    }

    /// `f64::max` reduces with a NEG_INFINITY identity must not clamp
    /// all-negative inputs (the reduce.rs:310 regression class).
    #[test]
    fn max_fold_with_neg_infinity_identity_handles_negatives() {
        let vals: Vec<f64> = (0..(2 * MIN_PARALLEL_LEN))
            .map(|i| -1.0 - (i % 7) as f64)
            .collect();
        let m = vals
            .par_iter()
            .copied()
            .fold(|| f64::NEG_INFINITY, f64::max)
            .reduce(|| f64::NEG_INFINITY, f64::max);
        assert_eq!(m, -1.0);
    }

    #[test]
    fn vec_receiver_stays_sequential_std() {
        let parts = vec![vec![1u32, 2], vec![3], vec![]];
        let sizes: Vec<(usize, usize)> = parts
            .into_par_iter()
            .enumerate()
            .map(|(i, p)| (i, p.len()))
            .collect();
        assert_eq!(sizes, vec![(0, 2), (1, 1), (2, 0)]);
    }
}
