//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API used by this workspace's
//! benches (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkId`, benchmark groups, `Bencher::iter`) with a simple
//! adaptive timing loop instead of criterion's statistical machinery.
//!
//! * Filters: positional args (as passed by `cargo bench -- <filter>`)
//!   select benchmarks by substring, like real criterion.
//! * JSON: set `CRITERION_JSON=<path>` to write a summary of all measured
//!   benchmarks as a JSON array (used by CI to upload an artifact).

use std::time::Instant;

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/param`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured (after one warm-up).
    pub iters: u64,
}

/// Benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{parameter}"),
        }
    }
}

/// Timing loop handle passed to the closure under test.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly: one warm-up call, then enough iterations to
    /// either accumulate ~300 ms or hit a small cap, and record the mean.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let warm = t0.elapsed().as_secs_f64();
        let target = 0.3f64;
        let iters = ((target / warm.max(1e-9)) as u64).clamp(2, 200);
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let total = t1.elapsed().as_secs_f64();
        self.mean_ns = total * 1e9 / iters as f64;
        self.iters = iters;
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    filters: Vec<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Positional args (not starting with '-') are name filters, the
        // same contract as `cargo bench -- <substring>`.
        let filters: Vec<String> = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            filters,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    fn enabled(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn run_one(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.enabled(&id) {
            return;
        }
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!(
            "{id:<48} {:>12.3} ms/iter  ({} iters)",
            b.mean_ns / 1e6,
            b.iters
        );
        self.results.push(BenchResult {
            id,
            mean_ns: b.mean_ns,
            iters: b.iters,
        });
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id.to_string(), &mut f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Print the summary and honor `CRITERION_JSON`.  Called by
    /// `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let mut out = String::from("[\n");
            for (i, r) in self.results.iter().enumerate() {
                let sep = if i + 1 == self.results.len() { "" } else { "," };
                out.push_str(&format!(
                    "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}{sep}\n",
                    r.id, r.mean_ns, r.iters
                ));
            }
            out.push_str("]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("criterion shim: cannot write {path}: {e}");
            } else {
                println!(
                    "criterion shim: wrote {} results to {path}",
                    self.results.len()
                );
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark one parameterized case.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(full, &mut |b| f(b, input));
        self
    }

    /// Benchmark an unparameterized case inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(full, &mut f);
        self
    }

    /// Close the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
