//! Offline stand-in for `proptest`.
//!
//! Implements the small strategy algebra this workspace's property tests
//! use — numeric ranges, tuples, `prop_map`, `prop_flat_map`,
//! `collection::vec`, `any::<T>()` — driven by a deterministic SplitMix64
//! stream.  `proptest!` expands each property to a plain `#[test]` that
//! samples the configured number of cases.  No shrinking: a failing case
//! panics with the seed state, which is fully reproducible because the
//! stream is fixed per test.

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: fixed or ranged.
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector of `element` samples.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-property configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Expand properties to plain `#[test]`s sampling `cases` deterministic
/// inputs each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Per-test deterministic stream: keyed by the test name.
                let mut key = 0xB5AD_4ECE_DA1C_E2A9u64;
                for b in stringify!($name).bytes() {
                    key = key.wrapping_mul(0x100_0000_01B3) ^ b as u64;
                }
                let mut rng = $crate::TestRng::new(key);
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_composes(v in (2usize..6).prop_flat_map(|n| crate::collection::vec(0u32..(n as u32), n))) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }
}
