//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the subset of the API the workspace uses: an unpoisonable
//! `Mutex` whose `lock()` returns the guard directly.

use std::sync::MutexGuard;

/// `parking_lot::Mutex` lookalike over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (poisoning is swallowed, as in parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
