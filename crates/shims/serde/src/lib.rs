//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize)]` as a marker (no actual
//! serialization framework is exercised — JSON emission is hand-rolled in
//! the bench crate), so this shim provides a method-less `Serialize`
//! marker trait plus a derive macro that emits an empty impl.  If real
//! serialization is ever needed, swap this for the real crate.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

pub use serde_derive::Serialize;

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl Serialize for String {}
impl Serialize for str {}
impl Serialize for bool {}
impl Serialize for f32 {}
impl Serialize for f64 {}
impl Serialize for u8 {}
impl Serialize for u16 {}
impl Serialize for u32 {}
impl Serialize for u64 {}
impl Serialize for usize {}
impl Serialize for i8 {}
impl Serialize for i16 {}
impl Serialize for i32 {}
impl Serialize for i64 {}
impl Serialize for isize {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
