//! Offline stand-in for `serde_derive`.
//!
//! `#[derive(Serialize)]` here emits an *empty* `impl serde::Serialize`
//! for the type (the shim `serde::Serialize` is a marker trait with no
//! methods).  Written against `proc_macro` directly — no `syn`/`quote`
//! available offline — so it supports exactly the shapes used in this
//! workspace: non-generic structs and enums.

use proc_macro::{TokenStream, TokenTree};

/// Derive an empty `serde::Serialize` marker impl for a plain (non-generic)
/// struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter();
    let mut name: Option<String> = None;
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let word = id.to_string();
            if word == "struct" || word == "enum" {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("derive(Serialize): expected type name, got {other:?}"),
                }
                if let Some(TokenTree::Punct(p)) = iter.next() {
                    assert!(
                        p.as_char() != '<',
                        "derive(Serialize) shim does not support generic types"
                    );
                }
                break;
            }
        }
    }
    let name = name.expect("derive(Serialize): no struct/enum found");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("derive(Serialize): generated impl must parse")
}
