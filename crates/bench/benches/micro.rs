//! Criterion microbenches backing the wall-clock columns of E6-E8:
//! seed-search throughput, Definition 2 parameter computation, ACD,
//! partition hash selection, one LOCAL procedure pass, and the MPC sort
//! primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parcolor_core::framework::{NormalProcedure, SimScratch};
use parcolor_core::hknt::acd::compute_acd;
use parcolor_core::hknt::procs::{SspMode, StageSet, TryRandomColor};
use parcolor_core::instance::ColoringState;
use parcolor_core::node_params::compute_params;
use parcolor_core::reduce::low_space_partition;
use parcolor_core::{D1lcInstance, NodeId, Params};
use parcolor_graphgen::gnm;
use parcolor_mpc::{Cluster, MpcConfig};
use parcolor_prg::{select_seed, select_seed_with, ChunkAssignment, Prg, PrgTape, SeedStrategy};
use std::hint::black_box;

fn bench_seed_search(c: &mut Criterion) {
    let n = 2_000usize;
    let g = gnm(n, n * 4, 1);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let set = StageSet::new(n, (0..n as NodeId).collect());
    let proc = TryRandomColor::new(&g, set, SspMode::Colored, 1);
    let chunks = ChunkAssignment::PerNode;

    let mut group = c.benchmark_group("seed_search");
    for bits in [4u32, 6, 8] {
        let prg = Prg::new(bits);
        group.bench_with_input(BenchmarkId::new("exhaustive", bits), &bits, |b, &bits| {
            b.iter(|| {
                let cost = |seed: u64| {
                    let tape = PrgTape::new(prg, seed, &chunks);
                    let out = proc.simulate(&state, &tape);
                    proc.ssp_failures(&state, &out).len() as f64
                };
                black_box(select_seed(bits, SeedStrategy::Exhaustive, cost))
            })
        });
    }
    // Fast path: scratch-buffer simulation + pick caching + seed-parallel
    // fold (select_seed_with).  Same workload, same strategies — the gap
    // against the rows above is the PR's headline number.
    for bits in [4u32, 6, 8, 12] {
        let prg = Prg::new(bits);
        for (label, strategy) in [
            ("exhaustive_fast", SeedStrategy::Exhaustive),
            ("bitwise_stream_fast", SeedStrategy::BitwiseCondExp),
        ] {
            group.bench_with_input(BenchmarkId::new(label, bits), &bits, |b, &bits| {
                b.iter(|| {
                    black_box(select_seed_with(
                        bits,
                        strategy,
                        || SimScratch::new(n),
                        |seed, scratch| {
                            let tape = PrgTape::new(prg, seed, &chunks);
                            proc.seed_cost_fused(&state, &tape, scratch)
                        },
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_params_and_acd(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocessing");
    for n in [1_000usize, 4_000] {
        let g = gnm(n, n * 6, 2);
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let state = ColoringState::new(&inst);
        let nodes: Vec<NodeId> = (0..n as NodeId).collect();
        let active = vec![true; n];
        group.bench_with_input(BenchmarkId::new("def2_params", n), &n, |b, _| {
            b.iter(|| black_box(compute_params(&g, &state, &nodes, &active)))
        });
        let table = compute_params(&g, &state, &nodes, &active);
        let params = Params::default();
        group.bench_with_input(BenchmarkId::new("acd", n), &n, |b, _| {
            b.iter(|| black_box(compute_acd(&g, &nodes, &active, &table, &params)))
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let n = 2_000usize;
    let g = gnm(n, n * 30, 3);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let nodes = state.uncolored_nodes();
    c.bench_function("low_space_partition_b64", |b| {
        b.iter(|| black_box(low_space_partition(&g, &state, &nodes, 20, 4, 64)))
    });
}

fn bench_procedure_pass(c: &mut Criterion) {
    let n = 8_000usize;
    let g = gnm(n, n * 5, 4);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let set = StageSet::new(n, (0..n as NodeId).collect());
    let proc = TryRandomColor::new(&g, set, SspMode::Auto, 1);
    let tape = parcolor_local::tape::CryptoTape::new(5);
    c.bench_function("try_random_color_pass_8k", |b| {
        b.iter(|| black_box(proc.simulate(&state, &tape)))
    });
}

fn bench_mpc_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_sort");
    for n in [1usize << 14, 1 << 17] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let cl = Cluster::new(MpcConfig::new(n, n, 0.5));
                let d = cl.distribute((0..n as u64).rev().collect(), 1);
                black_box(cl.sort_by_key(d, 1, |&x| x))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_seed_search,
    bench_params_and_acd,
    bench_partition,
    bench_procedure_pass,
    bench_mpc_sort
);
criterion_main!(benches);
