#![warn(missing_docs)]
//! Shared infrastructure for the experiment binaries.
//!
//! Each `eN_*` binary regenerates one table of EXPERIMENTS.md.  Binaries
//! honor the `PARCOLOR_QUICK=1` environment variable to shrink instance
//! sizes (used by CI-style smoke runs); published numbers use the default
//! sizes.

use std::time::Instant;

/// Aligned plain-text table printer (markdown-pipe compatible).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Print the table with aligned, markdown-pipe-compatible columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:>w$} |", c, w = widths[i]));
            }
            s
        };
        println!("{}", line(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        println!("{sep}");
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// `true` when the harness should use reduced sizes.
pub fn quick() -> bool {
    std::env::var("PARCOLOR_QUICK").is_ok_and(|v| v == "1")
}

/// Scale a size down in quick mode.
pub fn scaled(full: usize, quick_size: usize) -> usize {
    if quick() {
        quick_size
    } else {
        full
    }
}

/// Time a closure, returning (result, milliseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

/// Peak resident set size of this process in bytes.
///
/// Reads `VmHWM` from `/proc/self/status` on Linux; returns 0 on other
/// platforms.  The kernel's high-water mark is monotone over the process
/// lifetime, so successive calls report the cumulative peak — scale
/// sweeps should order their legs smallest-first and read this after
/// each leg.
pub fn peak_rss() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Format helpers.
/// Format with one decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format with two decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format with three decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Display-format any value (table-cell shorthand).
pub fn s<T: std::fmt::Display>(x: T) -> String {
    format!("{x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&[s(1), s(2)]);
        t.row(&[s(100), s("x")]);
        t.print(); // smoke: no panic
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn scaled_respects_env() {
        // Not setting the env: full size.
        if !quick() {
            assert_eq!(scaled(100, 10), 100);
        }
    }

    #[test]
    fn timed_returns_result() {
        let (v, ms) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "VmHWM should be readable");
            // A test process certainly holds more than 64 KiB and less
            // than 1 TiB; catches unit mix-ups (kB vs bytes).
            assert!(rss > 64 * 1024 && rss < 1 << 40);
        }
    }
}
