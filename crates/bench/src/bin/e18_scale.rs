//! E18 — million-node scaling sweep over the streaming construction
//! pipeline: build-ms, solve-ms, and peak RSS per `(family, n)` leg.
//!
//! Every leg builds its graph through the two-pass streaming path (the
//! only path the generators have).  For legs up to the identity cap the
//! sweep re-builds the same edge set through `GraphBuilder` and asserts
//! the CSR arrays — and, where the leg solves, the colorings — are
//! **bit-identical**; one leg additionally roundtrips through a `.pcg`
//! file and asserts the mmap-loaded solve matches the owned-memory
//! solve.  Any mismatch aborts the run (non-zero exit), which is what
//! the CI `scale-smoke` job keys on.  Writes `BENCH_scale.json`.
//!
//! Peak RSS is the kernel's `VmHWM` — monotone over the process — so
//! legs run smallest-first and the recorded value is the cumulative
//! peak after that leg.

use parcolor_bench::{f1, peak_rss, quick, s, timed, Table};
use parcolor_core::{D1lcInstance, Graph, Params, SeedStrategy, Solver};
use parcolor_graphgen as gen;

const SEED: u64 = 42;
/// Rebuild-and-compare ceiling: above this the edge-list rebuild would
/// reintroduce exactly the memory spike the streaming path removes.
const IDENTITY_CAP: usize = 100_000;

fn build(family: &str, n: usize) -> Graph {
    match family {
        "gnp" => gen::gnp(n, 8.0 / n as f64, SEED),
        "gnm" => gen::gnm(n, 4 * n, SEED),
        "regular" => gen::random_regular(n, 8, SEED),
        "powerlaw" => gen::power_law(n, 2.5, 8.0, SEED),
        other => unreachable!("unknown family {other}"),
    }
}

fn solver() -> Solver {
    Solver::deterministic(
        Params::default()
            .with_seed_bits(4)
            .with_strategy(SeedStrategy::FixedSubset(8)),
    )
}

fn solve_colors(g: Graph) -> Vec<u32> {
    let inst = D1lcInstance::delta_plus_one(g);
    let sol = solver().solve(&inst);
    inst.verify_coloring(&sol.colors).expect("valid coloring");
    sol.colors
}

struct Row {
    family: &'static str,
    n: usize,
    m: usize,
    build_ms: f64,
    solve_ms: f64, // < 0 when the leg is build-only
    peak_rss_mb: f64,
    identity_checked: bool,
}

fn main() {
    println!("# E18: scaling sweep (streaming CSR pipeline)\n");
    let families: [&'static str; 4] = ["gnp", "gnm", "regular", "powerlaw"];
    // (n, solve?) legs per family, smallest first (VmHWM is monotone).
    let legs: Vec<(usize, bool)> = if quick() {
        vec![(10_000, true), (100_000, true)]
    } else {
        vec![(10_000, true), (100_000, true), (1_000_000, true)]
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut pcg_checked = false;
    for &(n, solve) in &legs {
        for family in families {
            let (g, build_ms) = timed(|| build(family, n));
            let m = g.m();
            let identity_checked = n <= IDENTITY_CAP;
            let mut solve_ms = -1.0;
            if identity_checked {
                // Rebuild the identical edge set through the edge-list
                // path; the CSR must match bit for bit.
                let edges: Vec<_> = g.edges().collect();
                let rebuilt = Graph::from_edges(n, &edges);
                assert_eq!(
                    g.offsets(),
                    rebuilt.offsets(),
                    "{family} n={n}: stream offsets diverge from builder"
                );
                assert_eq!(
                    g.adj(),
                    rebuilt.adj(),
                    "{family} n={n}: stream adj diverges from builder"
                );
                if solve {
                    let g2 = g.clone();
                    let (colors, ms) = timed(|| solve_colors(g2));
                    solve_ms = ms;
                    let colors_rebuilt = solve_colors(rebuilt);
                    assert_eq!(
                        colors, colors_rebuilt,
                        "{family} n={n}: stream-built coloring diverges from builder-built"
                    );
                    if !pcg_checked {
                        assert_pcg_solve_matches(&g, &colors, family, n);
                        pcg_checked = true;
                    }
                }
            } else if solve {
                let g2 = g.clone();
                let (_, ms) = timed(|| solve_colors(g2));
                solve_ms = ms;
            }
            drop(g);
            rows.push(Row {
                family,
                n,
                m,
                build_ms,
                solve_ms,
                peak_rss_mb: peak_rss() as f64 / (1024.0 * 1024.0),
                identity_checked,
            });
            eprintln!(
                "  {family} n={n}: m={m} build={build_ms:.0}ms solve={solve_ms:.0}ms rss={:.0}MB",
                rows.last().unwrap().peak_rss_mb
            );
        }
    }
    if !quick() {
        // The 10^7 frontier: gnp build-only (construction dominates
        // end-to-end there, which is exactly what this PR attacks).
        let n = 10_000_000;
        let (g, build_ms) = timed(|| build("gnp", n));
        rows.push(Row {
            family: "gnp",
            n,
            m: g.m(),
            build_ms,
            solve_ms: -1.0,
            peak_rss_mb: peak_rss() as f64 / (1024.0 * 1024.0),
            identity_checked: false,
        });
        eprintln!(
            "  gnp n={n}: m={} build={build_ms:.0}ms rss={:.0}MB",
            g.m(),
            rows.last().unwrap().peak_rss_mb
        );
    }
    assert!(pcg_checked, "no leg exercised the .pcg mmap solve check");

    let mut t = Table::new(&["family", "n", "m", "build ms", "solve ms", "peak RSS MB"]);
    for r in &rows {
        t.row(&[
            s(r.family),
            s(r.n),
            s(r.m),
            f1(r.build_ms),
            if r.solve_ms < 0.0 {
                "-".into()
            } else {
                f1(r.solve_ms)
            },
            f1(r.peak_rss_mb),
        ]);
    }
    t.print();
    println!("\nStream-built CSR and colorings bit-identical to builder-built (asserted up to n={IDENTITY_CAP}); .pcg mmap solve bit-identical to owned (asserted).");

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"build_ms\": {:.1}, \
                 \"solve_ms\": {:.1}, \"peak_rss_mb\": {:.1}, \"identity_checked\": {}}}",
                r.family, r.n, r.m, r.build_ms, r.solve_ms, r.peak_rss_mb, r.identity_checked
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e18_scale\",\n  \"quick\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        quick(),
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_scale.json", &json) {
        Ok(()) => println!("wrote BENCH_scale.json"),
        Err(e) => eprintln!("cannot write BENCH_scale.json: {e}"),
    }
}

/// Roundtrip `g` through a `.pcg` file and assert the mmap-loaded solve
/// is bit-identical to the owned-memory solve (`expected`).
fn assert_pcg_solve_matches(g: &Graph, expected: &[u32], family: &str, n: usize) {
    let path = std::env::temp_dir().join(format!("parcolor-e18-{}.pcg", std::process::id()));
    {
        let f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create .pcg"));
        parcolor_cli::pcg::write_pcg(f, g).expect("write .pcg");
    }
    let loaded = parcolor_cli::pcg::load_pcg(&path).expect("load .pcg");
    if cfg!(all(unix, target_endian = "little")) {
        assert!(loaded.is_mapped(), "load should be zero-copy here");
    }
    let colors = solve_colors(loaded);
    assert_eq!(
        colors, expected,
        "{family} n={n}: mmap-loaded solve diverges from owned-memory solve"
    );
    std::fs::remove_file(&path).ok();
}
