//! E6 — seed-selection strategies compared on the same procedure: the
//! exhaustive argmin, the bitwise method of conditional expectations
//! (the paper's MPC implementation), the deterministic fixed-subset
//! surrogate, and an unoptimized single seed.
//!
//! The second half benchmarks the **seed-search fast path** (scratch-buffer
//! simulation + per-seed pick caching + seed-parallel fold) against the
//! reference allocation-heavy path at `seed_bits = 16`, and writes the
//! before/after numbers to `BENCH_seed_search.json`; the third half
//! benchmarks the **batched randomness plane** (lane-mixed tape stripes +
//! `KWiseHash::eval_batch`) against the scalar tape walk and writes
//! `BENCH_hash_batch.json`.
//!
//! `PARCOLOR_TAPE_MODE=scalar|batched` (default `batched`) selects the
//! tape driving the strategy table, so CI exercises both modes; the
//! batched-vs-scalar comparison section always runs both legs.

use parcolor_bench::{f1, f2, s, scaled, timed, Table};
use parcolor_core::framework::{NormalProcedure, SimScratch};
use parcolor_core::hknt::procs::{GenerateSlack, SspMode, StageSet, TryRandomColor};
use parcolor_core::instance::ColoringState;
use parcolor_core::mis::luby_round_seed_search;
use parcolor_core::{D1lcInstance, NodeId};
use parcolor_graphgen::gnm;
use parcolor_local::tape::{ForceScalar, Randomness};
use parcolor_prg::hashing::KWiseFamily;
use parcolor_prg::{
    select_seed, select_seed_blocks, select_seed_blocks_n, select_seed_with, ChunkAssignment, Prg,
    PrgTape, SeedStrategy, SEED_BLOCK,
};

/// The `PARCOLOR_TAPE_MODE` setting: batch plane on or forced scalar.
fn tape_mode() -> &'static str {
    match std::env::var("PARCOLOR_TAPE_MODE").as_deref() {
        Ok("scalar") => "scalar",
        _ => "batched",
    }
}

fn main() {
    let mode = tape_mode();
    println!("# E6: seed-selection strategies (one TryRandomColor step, {mode} tape)\n");
    let n = scaled(4_000, 800);
    let g = gnm(n, n * 4, 5);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let set = StageSet::new(n, (0..n as NodeId).collect());
    let proc = TryRandomColor::new(&g, set, SspMode::Colored, 1);

    let seed_bits = 10;
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;

    let mut t = Table::new(&[
        "strategy",
        "seeds evaluated",
        "chosen failures",
        "space mean",
        "space min",
        "guarantee",
        "ms",
    ]);
    for (name, strat) in [
        ("Exhaustive", SeedStrategy::Exhaustive),
        ("BitwiseCondExp", SeedStrategy::BitwiseCondExp),
        ("FixedSubset(32)", SeedStrategy::FixedSubset(32)),
        ("FixedSubset(8)", SeedStrategy::FixedSubset(8)),
        ("SingleSeed(0)", SeedStrategy::SingleSeed(0)),
    ] {
        let (sel, ms) = timed(|| {
            select_seed_with(
                seed_bits,
                strat,
                || SimScratch::new(n),
                |seed, scratch| {
                    let tape = PrgTape::new(prg, seed, &chunks);
                    if mode == "scalar" {
                        proc.seed_cost_fused(&state, &ForceScalar(tape), scratch)
                    } else {
                        proc.seed_cost_fused(&state, &tape, scratch)
                    }
                },
            )
        });
        t.row(&[
            s(name),
            s(sel.evaluated),
            f1(sel.cost),
            f2(sel.mean_cost),
            f1(sel.min_cost),
            s(if sel.satisfies_guarantee() {
                "OK"
            } else {
                "n/a"
            }),
            f1(ms),
        ]);
    }
    t.print();
    println!("\nBitwiseCondExp must land at or below the mean (Lemma 10); Exhaustive");
    println!("gives the floor; FixedSubset trades a little quality for throughput.");

    // The comparison sections time both tape modes internally (that's
    // their point), so a scalar-mode run — CI's smoke leg — skips them
    // rather than duplicating the expensive seed_bits = 16 searches; the
    // batched-mode (default) run writes both BENCH_*.json artifacts.
    if mode != "scalar" {
        let fastpath_rows = fastpath_comparison();
        let block_rows = block_proc_comparison();
        let worker_rows = workers_matrix();
        let engine_rows = engine_parallel_matrix();
        write_seed_search_json(&fastpath_rows, &block_rows, &worker_rows, &engine_rows);
        hash_batch_comparison();
    }
}

/// Node-striped parallel round simulation: one `TryRandomColor` round on
/// a large instance, evaluated through `simulate_into_par` at `workers ∈
/// {1, 2, 4, 8}`.  The adoptions MUST be identical at every worker count
/// (positional splice of pure stripes) — asserted here, so CI fails if
/// striping ever changes a round outcome.
fn engine_parallel_matrix() -> Vec<String> {
    use parcolor_local::tape::CryptoTape;
    let n = scaled(400_000, 40_000);
    let g = gnm(n, n * 6, 11);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let set = StageSet::new(n, (0..n as NodeId).collect());
    let proc = TryRandomColor::new(&g, set, SspMode::Auto, 5);
    let tape = CryptoTape::new(0xE6E6);
    let reps = scaled(20, 4);
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "\n# Node-striped round simulation, workers matrix (n = {n}, m = {}, \
         {reps} rounds, host threads = {host_threads})",
        g.m()
    );
    let mut t = Table::new(&["workers", "ms", "speedup vs 1", "adoptions"]);
    let mut rows = Vec::new();
    let mut base_ms = 0.0f64;
    let mut reference: Option<Vec<(NodeId, u32)>> = None;
    let pool = parcolor_exec::Executor::global();
    for workers in [1usize, 2, 4, 8] {
        let mut scratch = SimScratch::new(n);
        // Warm-up evaluates once outside the timing (pool spawn, page
        // faults, arena growth).
        proc.simulate_into_par(&state, &tape, &mut scratch, pool, workers);
        let (_, ms) = timed(|| {
            for _ in 0..reps {
                proc.simulate_into_par(&state, &tape, &mut scratch, pool, workers);
            }
        });
        match &reference {
            None => {
                base_ms = ms;
                reference = Some(scratch.adoptions.clone());
            }
            Some(adoptions) => {
                assert_eq!(
                    &scratch.adoptions, adoptions,
                    "workers = {workers}: striped simulation changed the round outcome"
                );
            }
        }
        let scaling = base_ms / ms.max(1e-9);
        t.row(&[s(workers), f1(ms), f2(scaling), s(scratch.adoptions.len())]);
        rows.push(format!(
            "    {{\"workers\": {workers}, \"ms\": {ms:.1}, \"speedup_vs_1\": {scaling:.2}, \
             \"host_threads\": {host_threads}}}"
        ));
    }
    t.print();
    println!("\nIdentical adoptions at every worker count (asserted).");
    rows
}

/// Seed-lane block evaluation vs the per-seed fused fallback for the
/// procedures the PR 4 plane did NOT cover: `GenerateSlack`'s
/// slack-target scan and Luby MIS's undominated scan.  One worker, so
/// the measured ratio is pure per-seed-eval speedup.
fn block_proc_comparison() -> Vec<String> {
    let seed_bits = 14u32;
    let n = scaled(2_000, 256);
    let g = gnm(n, n * 4, 7);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;
    println!(
        "\n# Slack-plane block evaluation vs per-seed fallback \
         (seed_bits = {seed_bits}, n = {n}, m = {}, 1 worker)",
        g.m()
    );
    let mut t = Table::new(&[
        "procedure",
        "per-seed ms",
        "block ms",
        "speedup",
        "same seed",
    ]);
    let mut rows = Vec::new();

    // -- GenerateSlack: slack-target SSP, the hottest non-clash cost ---
    let set = StageSet::new(n, (0..n as NodeId).collect());
    // Demanding targets (≈ the initial slack of a mid-degree node) so
    // costs are non-trivial and the block-vs-fallback assert below
    // compares real failure counts, not a degenerate all-zero space.
    let targets = vec![g.max_degree() as f64 * 0.6; n];
    let proc = GenerateSlack::new(&g, set, 0.2, targets, 3);
    let (scalar_sel, scalar_ms) = timed(|| {
        select_seed_blocks_n(
            seed_bits,
            SeedStrategy::Exhaustive,
            1,
            || SimScratch::new(n),
            |seed0, costs, scratch| {
                // The PR 4 regime: the default per-seed fused loop.
                for (i, c) in costs.iter_mut().enumerate() {
                    let tape = PrgTape::new(prg, seed0 + i as u64, &chunks);
                    *c = proc.seed_cost_fused(&state, &tape, scratch);
                }
            },
        )
    });
    let (block_sel, block_ms) = timed(|| {
        select_seed_blocks_n(
            seed_bits,
            SeedStrategy::Exhaustive,
            1,
            || SimScratch::new(n),
            |seed0, costs, scratch| {
                let tapes = prg.block_tapes(seed0, &chunks);
                let refs: [&dyn Randomness; SEED_BLOCK] =
                    std::array::from_fn(|i| &tapes[i] as &dyn Randomness);
                proc.seed_cost_block(&state, &refs[..costs.len()], scratch, costs);
            },
        )
    });
    let same = scalar_sel.seed == block_sel.seed && scalar_sel.cost == block_sel.cost;
    assert!(
        same,
        "GenerateSlack: block path diverged from per-seed path"
    );
    let speedup = scalar_ms / block_ms.max(1e-9);
    t.row(&[
        s("GenerateSlack"),
        f1(scalar_ms),
        f1(block_ms),
        f2(speedup),
        s(same),
    ]);
    rows.push(format!(
        "    {{\"procedure\": \"GenerateSlack\", \"per_seed_ms\": {scalar_ms:.1}, \
         \"block_ms\": {block_ms:.1}, \"per_eval_speedup\": {speedup:.2}, \
         \"chosen_seed\": {}, \"chosen_cost\": {}}}",
        block_sel.seed, block_sel.cost
    ));

    // -- Luby MIS: undominated scan over the priority plane ------------
    let (mis_scalar, mis_scalar_ms) =
        timed(|| luby_round_seed_search(&g, seed_bits, SeedStrategy::Exhaustive, 1, false));
    let (mis_block, mis_block_ms) =
        timed(|| luby_round_seed_search(&g, seed_bits, SeedStrategy::Exhaustive, 1, true));
    let same = mis_scalar.seed == mis_block.seed && mis_scalar.cost == mis_block.cost;
    assert!(same, "Luby MIS: block path diverged from per-seed path");
    let speedup = mis_scalar_ms / mis_block_ms.max(1e-9);
    t.row(&[
        s("Luby MIS"),
        f1(mis_scalar_ms),
        f1(mis_block_ms),
        f2(speedup),
        s(same),
    ]);
    rows.push(format!(
        "    {{\"procedure\": \"LubyMIS\", \"per_seed_ms\": {mis_scalar_ms:.1}, \
         \"block_ms\": {mis_block_ms:.1}, \"per_eval_speedup\": {speedup:.2}, \
         \"chosen_seed\": {}, \"chosen_cost\": {}}}",
        mis_block.seed, mis_block.cost
    ));
    t.print();
    rows
}

/// Sharded seed search: the same block search at `workers ∈ {1, 2, 4, 8}`.
/// The chosen seed/cost MUST be identical at every worker count (the
/// stolen-block fold is grouping-invariant) — this function asserts it,
/// which is what fails CI if sharding ever changes a selection.
fn workers_matrix() -> Vec<String> {
    let seed_bits = 16u32;
    let n = scaled(2_000, 256);
    let g = gnm(n, n * 4, 7);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let set = StageSet::new(n, (0..n as NodeId).collect());
    let proc = TryRandomColor::new(&g, set, SspMode::Colored, 1);
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "\n# Sharded seed search, workers matrix (seed_bits = {seed_bits}, n = {n}, \
         m = {}, host threads = {host_threads})",
        g.m()
    );
    let mut t = Table::new(&["workers", "ms", "speedup vs 1", "chosen seed", "cost"]);
    let mut rows = Vec::new();
    let mut base_ms = 0.0f64;
    let mut reference: Option<(u64, f64)> = None;
    for workers in [1usize, 2, 4, 8] {
        let (sel, ms) = timed(|| {
            select_seed_blocks_n(
                seed_bits,
                SeedStrategy::Exhaustive,
                workers,
                || SimScratch::new(n),
                |seed0, costs, scratch| {
                    let tapes = prg.block_tapes(seed0, &chunks);
                    let refs: [&dyn Randomness; SEED_BLOCK] =
                        std::array::from_fn(|i| &tapes[i] as &dyn Randomness);
                    proc.seed_cost_block(&state, &refs[..costs.len()], scratch, costs);
                },
            )
        });
        match reference {
            None => {
                base_ms = ms;
                reference = Some((sel.seed, sel.cost));
            }
            Some((seed, cost)) => {
                assert_eq!(
                    (seed, cost),
                    (sel.seed, sel.cost),
                    "workers = {workers}: sharded seed search changed the selection"
                );
            }
        }
        let scaling = base_ms / ms.max(1e-9);
        t.row(&[s(workers), f1(ms), f2(scaling), s(sel.seed), f1(sel.cost)]);
        rows.push(format!(
            "    {{\"workers\": {workers}, \"ms\": {ms:.1}, \"speedup_vs_1\": {scaling:.2}, \
             \"chosen_seed\": {}, \"chosen_cost\": {}, \"host_threads\": {host_threads}}}",
            sel.seed, sel.cost
        ));
    }
    t.print();
    println!("\nIdentical chosen seed/cost at every worker count (asserted).");
    rows
}

fn write_seed_search_json(
    fastpath: &[String],
    blocks: &[String],
    workers: &[String],
    engine: &[String],
) {
    let json = format!(
        "{{\n  \"experiment\": \"e6_seed_search_fastpath\",\n  \"simd_path\": \"{}\",\n  \
         \"rows\": [\n{}\n  ],\n  \
         \"block_procs\": [\n{}\n  ],\n  \"workers_matrix\": [\n{}\n  ],\n  \
         \"engine_parallel\": [\n{}\n  ]\n}}\n",
        parcolor_core::simd::active_path(),
        fastpath.join(",\n"),
        blocks.join(",\n"),
        workers.join(",\n"),
        engine.join(",\n")
    );
    match std::fs::write("BENCH_seed_search.json", &json) {
        Ok(()) => println!("\nwrote BENCH_seed_search.json"),
        Err(e) => eprintln!("\ncannot write BENCH_seed_search.json: {e}"),
    }
}

/// Reference vs fast path at `seed_bits = 16` — the derandomizer's hot
/// loop at full production seed length.  Returns JSON rows for
/// `BENCH_seed_search.json`.
fn fastpath_comparison() -> Vec<String> {
    let seed_bits = 16u32;
    let n = scaled(2_000, 256);
    let g = gnm(n, n * 4, 7);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let set = StageSet::new(n, (0..n as NodeId).collect());
    let proc = TryRandomColor::new(&g, set, SspMode::Colored, 1);
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());

    println!(
        "\n# Fast path vs reference at seed_bits = {seed_bits} (n = {n}, m = {})",
        g.m()
    );
    let mut t = Table::new(&[
        "strategy",
        "reference ms",
        "fast ms",
        "speedup",
        "same seed",
    ]);
    let mut rows_json = Vec::new();
    for (name, strategy) in [
        ("Exhaustive", SeedStrategy::Exhaustive),
        ("BitwiseCondExp", SeedStrategy::BitwiseCondExp),
    ] {
        let (old_sel, old_ms) = timed(|| {
            select_seed(seed_bits, strategy, |seed| {
                let tape = PrgTape::new(prg, seed, &chunks);
                let out = proc.simulate(&state, &tape);
                proc.seed_cost(&state, &out)
            })
        });
        let (new_sel, new_ms) = timed(|| {
            select_seed_with(
                seed_bits,
                strategy,
                || SimScratch::new(n),
                |seed, scratch| {
                    let tape = PrgTape::new(prg, seed, &chunks);
                    proc.seed_cost_fused(&state, &tape, scratch)
                },
            )
        });
        let same = old_sel.seed == new_sel.seed && old_sel.cost == new_sel.cost;
        assert!(same, "{name}: fast path diverged from reference");
        let speedup = old_ms / new_ms.max(1e-9);
        // The streaming bitwise walk re-evaluates ~2× seeds instead of
        // materializing the 2^d cost table; report per-evaluation speedup
        // alongside wall-clock so the trade is visible.
        let space = 1u64 << seed_bits;
        let (ref_evals, fast_evals) = match strategy {
            SeedStrategy::BitwiseCondExp => (space, 2 * space - 1),
            _ => (space, space),
        };
        let per_eval = (old_ms / ref_evals as f64) / (new_ms / fast_evals as f64).max(1e-12);
        t.row(&[s(name), f1(old_ms), f1(new_ms), f2(speedup), s(same)]);
        rows_json.push(format!(
            "    {{\"strategy\": \"{name}\", \"seed_bits\": {seed_bits}, \"n\": {n}, \
             \"m\": {}, \"workers\": {workers}, \"reference_ms\": {old_ms:.1}, \
             \"fastpath_ms\": {new_ms:.1}, \"speedup\": {speedup:.2}, \
             \"reference_evals\": {ref_evals}, \"fastpath_evals\": {fast_evals}, \
             \"per_eval_speedup\": {per_eval:.2}, \
             \"chosen_seed\": {}, \"chosen_cost\": {}}}",
            g.m(),
            new_sel.seed,
            new_sel.cost
        ));
    }
    t.print();
    rows_json
}

/// Batched randomness plane vs the scalar tape walk — `eval_batch`
/// throughput and the end-to-end seed search at `seed_bits = 16` on a
/// single worker.  Both legs run the *same* plane-based `simulate_into`;
/// the scalar leg forces the tape's scalar trait defaults (the PR 1
/// regime: one mixer call per node per seed), so the measured gap is the
/// tape-level batching alone.  Emits `BENCH_hash_batch.json`.
fn hash_batch_comparison() {
    // Pin the fold to one worker so per-seed evaluation cost is what's
    // measured (and recorded) — not thread scaling.  `PARCOLOR_THREADS`
    // is the knob with the highest precedence, so pinning it wins even
    // when the deprecated `PARCOLOR_SEED_THREADS` alias is also set.
    let prev_threads = std::env::var("PARCOLOR_THREADS").ok();
    std::env::set_var("PARCOLOR_THREADS", "1");

    println!("\n# Batched randomness plane vs scalar tape (1 worker)");

    // -- KWiseHash::eval_batch throughput ------------------------------
    let nkeys = scaled(400_000, 40_000);
    let keys: Vec<u64> = (0..nkeys as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    let mut out = vec![0u64; keys.len()];
    let mut out_scalar = vec![0u64; keys.len()];
    let mut t = Table::new(&["hash k", "scalar Mkeys/s", "batched Mkeys/s", "speedup"]);
    let mut hash_rows = Vec::new();
    for k in [2u32, 4, 8] {
        let h = KWiseFamily::new(k, 1 << 20).member(0xE6);
        // Both legs fill a draw buffer — that is what plane consumers do —
        // so the comparison isolates the evaluation, not store traffic
        // (a store-free reduce loop made the old k = 2 row read 0.77×).
        // One warm-up pass apiece takes page faults out of the timings.
        for (o, &x) in out_scalar.iter_mut().zip(&keys) {
            *o = h.eval(x);
        }
        h.eval_batch(&keys, &mut out);
        let (_, scalar_ms) = timed(|| {
            for (o, &x) in out_scalar.iter_mut().zip(&keys) {
                *o = h.eval(x);
            }
        });
        let (_, batch_ms) = timed(|| h.eval_batch(&keys, &mut out));
        // Keep both legs observable (and cross-check them while at it).
        assert_eq!(out, out_scalar);
        std::hint::black_box(&out_scalar);
        std::hint::black_box(&out);
        let scalar_rate = nkeys as f64 / scalar_ms / 1e3; // M keys/s
        let batch_rate = nkeys as f64 / batch_ms / 1e3;
        t.row(&[
            s(k),
            f2(scalar_rate),
            f2(batch_rate),
            f2(batch_rate / scalar_rate),
        ]);
        hash_rows.push(format!(
            "    {{\"k\": {k}, \"keys\": {nkeys}, \"scalar_keys_per_sec\": {:.0}, \
             \"batched_keys_per_sec\": {:.0}, \"speedup\": {:.2}}}",
            scalar_rate * 1e6,
            batch_rate * 1e6,
            batch_rate / scalar_rate
        ));
    }
    t.print();

    // -- end-to-end seed search at seed_bits = 16 ----------------------
    let seed_bits = 16u32;
    let n = scaled(2_000, 256);
    let g = gnm(n, n * 4, 7);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let set = StageSet::new(n, (0..n as NodeId).collect());
    let proc = TryRandomColor::new(&g, set, SspMode::Colored, 1);
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;

    println!(
        "\n# Seed search, scalar tape vs batched plane (seed_bits = {seed_bits}, n = {n}, \
         m = {}, 1 worker)",
        g.m()
    );
    let mut t = Table::new(&[
        "strategy",
        "scalar ms",
        "batched ms",
        "speedup",
        "same seed",
    ]);
    let mut search_rows = Vec::new();
    for (name, strategy) in [
        ("Exhaustive", SeedStrategy::Exhaustive),
        ("BitwiseCondExp", SeedStrategy::BitwiseCondExp),
    ] {
        let (scalar_sel, scalar_ms) = timed(|| {
            select_seed_with(
                seed_bits,
                strategy,
                || SimScratch::new(n),
                |seed, scratch| {
                    let tape = ForceScalar(PrgTape::new(prg, seed, &chunks));
                    proc.seed_cost_fused(&state, &tape, scratch)
                },
            )
        });
        let (batched_sel, batched_ms) = timed(|| {
            select_seed_blocks(
                seed_bits,
                strategy,
                || SimScratch::new(n),
                |seed0, costs, scratch| {
                    let tapes = prg.block_tapes(seed0, &chunks);
                    let refs: [&dyn Randomness; SEED_BLOCK] =
                        std::array::from_fn(|i| &tapes[i] as &dyn Randomness);
                    proc.seed_cost_block(&state, &refs[..costs.len()], scratch, costs);
                },
            )
        });
        let same = scalar_sel.seed == batched_sel.seed && scalar_sel.cost == batched_sel.cost;
        assert!(same, "{name}: batched plane diverged from scalar tape");
        // Both legs evaluate the same number of seeds, so wall-clock
        // speedup IS per-seed-eval speedup here.
        let speedup = scalar_ms / batched_ms.max(1e-9);
        t.row(&[s(name), f1(scalar_ms), f1(batched_ms), f2(speedup), s(same)]);
        search_rows.push(format!(
            "    {{\"strategy\": \"{name}\", \"scalar_ms\": {scalar_ms:.1}, \
             \"batched_ms\": {batched_ms:.1}, \"per_eval_speedup\": {speedup:.2}, \
             \"chosen_seed\": {}, \"chosen_cost\": {}}}",
            batched_sel.seed, batched_sel.cost
        ));
    }
    t.print();

    let json = format!(
        "{{\n  \"experiment\": \"e6_hash_batch\",\n  \"seed_bits\": {seed_bits},\n  \
         \"n\": {n},\n  \"m\": {},\n  \"workers\": 1,\n  \"eval_batch\": [\n{}\n  ],\n  \
         \"seed_search\": [\n{}\n  ]\n}}\n",
        g.m(),
        hash_rows.join(",\n"),
        search_rows.join(",\n")
    );
    match std::fs::write("BENCH_hash_batch.json", &json) {
        Ok(()) => println!("\nwrote BENCH_hash_batch.json"),
        Err(e) => eprintln!("\ncannot write BENCH_hash_batch.json: {e}"),
    }

    match prev_threads {
        Some(v) => std::env::set_var("PARCOLOR_THREADS", v),
        None => std::env::remove_var("PARCOLOR_THREADS"),
    }
}
