//! E6 — seed-selection strategies compared on the same procedure: the
//! exhaustive argmin, the bitwise method of conditional expectations
//! (the paper's MPC implementation), the deterministic fixed-subset
//! surrogate, and an unoptimized single seed.
//!
//! The second half benchmarks the **seed-search fast path** (scratch-buffer
//! simulation + per-seed pick caching + seed-parallel fold) against the
//! reference allocation-heavy path at `seed_bits = 16`, and writes the
//! before/after numbers to `BENCH_seed_search.json` so the trajectory is
//! tracked across PRs.

use parcolor_bench::{f1, f2, s, scaled, timed, Table};
use parcolor_core::framework::{NormalProcedure, SimScratch};
use parcolor_core::hknt::procs::{SspMode, StageSet, TryRandomColor};
use parcolor_core::instance::ColoringState;
use parcolor_core::{D1lcInstance, NodeId};
use parcolor_graphgen::gnm;
use parcolor_prg::{select_seed, select_seed_with, ChunkAssignment, Prg, PrgTape, SeedStrategy};

fn main() {
    println!("# E6: seed-selection strategies (one TryRandomColor step)\n");
    let n = scaled(4_000, 800);
    let g = gnm(n, n * 4, 5);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let set = StageSet::new(n, (0..n as NodeId).collect());
    let proc = TryRandomColor::new(&g, set, SspMode::Colored, 1);

    let seed_bits = 10;
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;
    let cost = |seed: u64| {
        let tape = PrgTape::new(prg, seed, &chunks);
        let out = proc.simulate(&state, &tape);
        proc.ssp_failures(&state, &out).len() as f64
    };

    let mut t = Table::new(&[
        "strategy",
        "seeds evaluated",
        "chosen failures",
        "space mean",
        "space min",
        "guarantee",
        "ms",
    ]);
    for (name, strat) in [
        ("Exhaustive", SeedStrategy::Exhaustive),
        ("BitwiseCondExp", SeedStrategy::BitwiseCondExp),
        ("FixedSubset(32)", SeedStrategy::FixedSubset(32)),
        ("FixedSubset(8)", SeedStrategy::FixedSubset(8)),
        ("SingleSeed(0)", SeedStrategy::SingleSeed(0)),
    ] {
        let (sel, ms) = timed(|| select_seed(seed_bits, strat, cost));
        t.row(&[
            s(name),
            s(sel.evaluated),
            f1(sel.cost),
            f2(sel.mean_cost),
            f1(sel.min_cost),
            s(if sel.satisfies_guarantee() {
                "OK"
            } else {
                "n/a"
            }),
            f1(ms),
        ]);
    }
    t.print();
    println!("\nBitwiseCondExp must land at or below the mean (Lemma 10); Exhaustive");
    println!("gives the floor; FixedSubset trades a little quality for throughput.");

    fastpath_comparison();
}

/// Reference vs fast path at `seed_bits = 16` — the derandomizer's hot
/// loop at full production seed length.  Emits `BENCH_seed_search.json`.
fn fastpath_comparison() {
    let seed_bits = 16u32;
    let n = scaled(2_000, 256);
    let g = gnm(n, n * 4, 7);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let set = StageSet::new(n, (0..n as NodeId).collect());
    let proc = TryRandomColor::new(&g, set, SspMode::Colored, 1);
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());

    println!(
        "\n# Fast path vs reference at seed_bits = {seed_bits} (n = {n}, m = {})",
        g.m()
    );
    let mut t = Table::new(&[
        "strategy",
        "reference ms",
        "fast ms",
        "speedup",
        "same seed",
    ]);
    let mut rows_json = Vec::new();
    for (name, strategy) in [
        ("Exhaustive", SeedStrategy::Exhaustive),
        ("BitwiseCondExp", SeedStrategy::BitwiseCondExp),
    ] {
        let (old_sel, old_ms) = timed(|| {
            select_seed(seed_bits, strategy, |seed| {
                let tape = PrgTape::new(prg, seed, &chunks);
                let out = proc.simulate(&state, &tape);
                proc.seed_cost(&state, &out)
            })
        });
        let (new_sel, new_ms) = timed(|| {
            select_seed_with(
                seed_bits,
                strategy,
                || SimScratch::new(n),
                |seed, scratch| {
                    let tape = PrgTape::new(prg, seed, &chunks);
                    proc.seed_cost_fused(&state, &tape, scratch)
                },
            )
        });
        let same = old_sel.seed == new_sel.seed && old_sel.cost == new_sel.cost;
        assert!(same, "{name}: fast path diverged from reference");
        let speedup = old_ms / new_ms.max(1e-9);
        // The streaming bitwise walk re-evaluates ~2× seeds instead of
        // materializing the 2^d cost table; report per-evaluation speedup
        // alongside wall-clock so the trade is visible.
        let space = 1u64 << seed_bits;
        let (ref_evals, fast_evals) = match strategy {
            SeedStrategy::BitwiseCondExp => (space, 2 * space - 1),
            _ => (space, space),
        };
        let per_eval = (old_ms / ref_evals as f64) / (new_ms / fast_evals as f64).max(1e-12);
        t.row(&[s(name), f1(old_ms), f1(new_ms), f2(speedup), s(same)]);
        rows_json.push(format!(
            "    {{\"strategy\": \"{name}\", \"reference_ms\": {old_ms:.1}, \
             \"fastpath_ms\": {new_ms:.1}, \"speedup\": {speedup:.2}, \
             \"reference_evals\": {ref_evals}, \"fastpath_evals\": {fast_evals}, \
             \"per_eval_speedup\": {per_eval:.2}, \
             \"chosen_seed\": {}, \"chosen_cost\": {}}}",
            new_sel.seed, new_sel.cost
        ));
    }
    t.print();

    let json = format!(
        "{{\n  \"experiment\": \"e6_seed_search_fastpath\",\n  \"seed_bits\": {seed_bits},\n  \
         \"n\": {n},\n  \"m\": {},\n  \"workers\": {workers},\n  \"rows\": [\n{}\n  ]\n}}\n",
        g.m(),
        rows_json.join(",\n")
    );
    match std::fs::write("BENCH_seed_search.json", &json) {
        Ok(()) => println!("\nwrote BENCH_seed_search.json"),
        Err(e) => eprintln!("\ncannot write BENCH_seed_search.json: {e}"),
    }
}
