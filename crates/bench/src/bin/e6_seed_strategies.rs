//! E6 — seed-selection strategies compared on the same procedure: the
//! exhaustive argmin, the bitwise method of conditional expectations
//! (the paper's MPC implementation), the deterministic fixed-subset
//! surrogate, and an unoptimized single seed.

use parcolor_bench::{f1, f2, s, scaled, timed, Table};
use parcolor_core::framework::NormalProcedure;
use parcolor_core::hknt::procs::{SspMode, StageSet, TryRandomColor};
use parcolor_core::instance::ColoringState;
use parcolor_core::{D1lcInstance, NodeId};
use parcolor_graphgen::gnm;
use parcolor_prg::{select_seed, ChunkAssignment, Prg, PrgTape, SeedStrategy};

fn main() {
    println!("# E6: seed-selection strategies (one TryRandomColor step)\n");
    let n = scaled(4_000, 800);
    let g = gnm(n, n * 4, 5);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let set = StageSet::new(n, (0..n as NodeId).collect());
    let proc = TryRandomColor::new(&g, set, SspMode::Colored, 1);

    let seed_bits = 10;
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;
    let cost = |seed: u64| {
        let tape = PrgTape::new(prg, seed, &chunks);
        let out = proc.simulate(&state, &tape);
        proc.ssp_failures(&state, &out).len() as f64
    };

    let mut t = Table::new(&[
        "strategy",
        "seeds evaluated",
        "chosen failures",
        "space mean",
        "space min",
        "guarantee",
        "ms",
    ]);
    for (name, strat) in [
        ("Exhaustive", SeedStrategy::Exhaustive),
        ("BitwiseCondExp", SeedStrategy::BitwiseCondExp),
        ("FixedSubset(32)", SeedStrategy::FixedSubset(32)),
        ("FixedSubset(8)", SeedStrategy::FixedSubset(8)),
        ("SingleSeed(0)", SeedStrategy::SingleSeed(0)),
    ] {
        let (sel, ms) = timed(|| select_seed(seed_bits, strat, cost));
        t.row(&[
            s(name),
            s(sel.evaluated),
            f1(sel.cost),
            f2(sel.mean_cost),
            f1(sel.min_cost),
            s(if sel.satisfies_guarantee() {
                "OK"
            } else {
                "n/a"
            }),
            f1(ms),
        ]);
    }
    t.print();
    println!("\nBitwiseCondExp must land at or below the mean (Lemma 10); Exhaustive");
    println!("gives the floor; FixedSubset trades a little quality for throughput.");
}
