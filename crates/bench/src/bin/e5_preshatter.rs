//! E5 — the HKNT pre-shattering stage (Lemma 13): fraction of the stage
//! colored per sub-phase, ACD composition, and what remains for the
//! low-degree finisher.

use parcolor_bench::{f2, s, scaled, Table};
use parcolor_core::framework::Runner;
use parcolor_core::hknt::pipeline::color_middle;
use parcolor_core::instance::ColoringState;
use parcolor_core::{Params, SeedStrategy};
use parcolor_graphgen::{degree_plus_one, gnm, planted_cliques, power_law};

fn main() {
    println!("# E5: HKNT pre-shattering stage anatomy\n");
    let n = scaled(3_000, 600);
    let suite = vec![
        ("gnm d=16", degree_plus_one(gnm(n, n * 8, 1))),
        ("powerlaw", degree_plus_one(power_law(n, 2.5, 10.0, 2))),
        (
            "planted",
            degree_plus_one(planted_cliques(&[40, 40, 32, 32], 0.08, n, 6, 3)),
        ),
    ];
    let params = Params::default()
        .with_seed_bits(6)
        .with_strategy(SeedStrategy::FixedSubset(16));

    let mut t = Table::new(&[
        "instance",
        "stage size",
        "sparse",
        "uneven",
        "dense",
        "cliques",
        "Vstart",
        "put-aside",
        "colored %",
        "deferred %",
    ]);
    for (name, inst) in &suite {
        let mut state = ColoringState::new(inst);
        let mut runner = Runner::derandomized(&inst.graph, &params, inst.n());
        let stage: Vec<u32> = state.uncolored_nodes();
        let rep = color_middle(&mut runner, &mut state, &params, &stage);
        assert!(state.verify_partial(&inst.graph).is_ok());
        let pct = |x: usize| 100.0 * x as f64 / rep.stage_size.max(1) as f64;
        t.row(&[
            s(name),
            s(rep.stage_size),
            s(rep.sparse),
            s(rep.uneven),
            s(rep.dense),
            s(rep.cliques),
            s(rep.vstart),
            s(rep.put_aside),
            f2(pct(rep.colored)),
            f2(pct(rep.deferred)),
        ]);
    }
    t.print();

    println!("\nSlackColor sub-series (last instance):");
    let (name, inst) = &suite[suite.len() - 1];
    let mut state = ColoringState::new(inst);
    let mut runner = Runner::derandomized(&inst.graph, &params, inst.n());
    let stage: Vec<u32> = state.uncolored_nodes();
    let rep = color_middle(&mut runner, &mut state, &params, &stage);
    let mut t2 = Table::new(&[
        "series",
        "participants",
        "colored",
        "deferred",
        "steps",
        "s_min",
        "rho",
    ]);
    for r in &rep.slack_color_reports {
        t2.row(&[
            s(&r.label),
            s(r.participants),
            s(r.colored),
            s(r.deferred),
            s(r.steps),
            s(r.s_min),
            f2(r.rho),
        ]);
    }
    t2.print();
    println!("\n({name}: per-series breakdown of Algorithm 5/7's SlackColor calls)");
}
