//! E9 — PRG chunk-assignment ablation: the paper's power-graph coloring
//! (`O(Δ^{8τ})` chunks, needs `G^{4τ}`) vs our per-node chunks (virtual
//! output).  Compares setup cost, chunk counts, and resulting step
//! quality on the same instance.

use parcolor_bench::{f1, f2, s, scaled, timed, Table};
use parcolor_core::framework::Runner;
use parcolor_core::hknt::procs::{SspMode, StageSet, TryRandomColor};
use parcolor_core::instance::ColoringState;
use parcolor_core::{ChunkMode, D1lcInstance, NodeId, Params};
use parcolor_graphgen::{gnm, ring, torus};

fn main() {
    println!("# E9: chunk-assignment ablation (PowerColoring vs PerNode)\n");
    let n = scaled(1_200, 400);
    let suite = vec![
        ("ring", ring(n)),
        (
            "torus",
            torus((n as f64).sqrt() as usize, (n as f64).sqrt() as usize),
        ),
        ("gnm d=4", gnm(n, n * 2, 3)),
    ];

    let mut t = Table::new(&[
        "instance",
        "mode",
        "setup ms",
        "chosen failures",
        "mean failures",
        "colored",
    ]);
    for (name, g) in &suite {
        let inst = D1lcInstance::delta_plus_one(g.clone());
        for mode in [ChunkMode::PowerColoring, ChunkMode::PerNode] {
            let params = Params::default().with_seed_bits(7).with_chunking(mode);
            let ((mut runner, mut state), setup_ms) = timed(|| {
                (
                    Runner::derandomized(g, &params, g.n()),
                    ColoringState::new(&inst),
                )
            });
            let set = StageSet::new(g.n(), (0..g.n() as NodeId).collect());
            let proc = TryRandomColor::new(g, set, SspMode::Colored, 1);
            let rep = runner.run_step(&proc, &mut state);
            let sel = rep.selection.unwrap();
            t.row(&[
                s(name),
                s(format!("{mode:?}")),
                f1(setup_ms),
                f2(sel.cost),
                f2(sel.mean_cost),
                s(rep.adopted),
            ]);
        }
    }
    t.print();
    println!("\nBoth modes satisfy the guarantee; PowerColoring pays the G^{{4τ}}");
    println!("construction (quadratic in Δ^{{4τ}}) which PerNode avoids entirely —");
    println!("the substitution recorded in DESIGN.md §5.");
}
