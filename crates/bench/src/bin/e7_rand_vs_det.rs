//! E7 — derandomization overhead (Lemma 4 vs Theorem 1): same instances,
//! same pipeline, randomized tape vs PRG + conditional expectations.
//! The paper's claim: derandomization costs only a constant-factor round
//! overhead (and, in wall-clock, a factor proportional to seeds tried).

use parcolor_bench::{f1, f2, s, scaled, timed, Table};
use parcolor_core::{Params, SeedStrategy, Solver};
use parcolor_graphgen::{degree_plus_one, gnm, power_law, random_regular};

fn main() {
    println!("# E7: randomized vs derandomized pipeline\n");
    let n = scaled(8_000, 1_200);
    let suite = vec![
        ("gnm d=10", degree_plus_one(gnm(n, n * 5, 1))),
        ("regular d=12", degree_plus_one(random_regular(n, 12, 2))),
        ("powerlaw", degree_plus_one(power_law(n, 2.6, 8.0, 3))),
    ];
    let params = Params::default()
        .with_seed_bits(6)
        .with_strategy(SeedStrategy::FixedSubset(16));

    let mut t = Table::new(&[
        "instance",
        "det rounds",
        "rand rounds",
        "round ratio",
        "det defers",
        "det ms",
        "rand ms",
        "wall ratio",
    ]);
    for (name, inst) in &suite {
        let (det, det_ms) = timed(|| Solver::deterministic(params.clone()).solve(inst));
        let (rnd, rnd_ms) = timed(|| Solver::randomized(params.clone(), 9).solve(inst));
        inst.verify_coloring(&det.colors).unwrap();
        inst.verify_coloring(&rnd.colors).unwrap();
        t.row(&[
            s(name),
            s(det.cost.mpc_rounds),
            s(rnd.cost.mpc_rounds),
            f2(det.cost.mpc_rounds as f64 / rnd.cost.mpc_rounds.max(1) as f64),
            s(det.stats.total_deferrals),
            f1(det_ms),
            f1(rnd_ms),
            f2(det_ms / rnd_ms.max(1e-9)),
        ]);
    }
    t.print();
    println!("\nRound ratio ≈ 1 is the paper's claim; the wall ratio tracks the");
    println!("number of seeds evaluated per step (here 16).");
}
