//! E16 — design-choice ablations: one knob at a time against the default
//! configuration, measuring rounds, deferrals, and wall-clock.
//!
//! Knobs: GenerateSlack sampling probability (paper: 1/10), SlackColor's
//! κ, the TryRandomColor warm-up length ("O(1)"), seed-space size, the
//! multi-range schedule, and the SSP slack-target fraction.

use parcolor_bench::{f1, s, scaled, timed, Table};
use parcolor_core::{Params, SeedStrategy, Solver};
use parcolor_graphgen::{degree_plus_one, gnm};

fn base() -> Params {
    Params::default()
        .with_seed_bits(6)
        .with_strategy(SeedStrategy::FixedSubset(16))
}

fn main() {
    println!("# E16: parameter ablations (one knob at a time)\n");
    let n = scaled(6_000, 1_000);
    let inst = degree_plus_one(gnm(n, n * 8, 21));

    let mut variants: Vec<(String, Params)> = vec![("default".into(), base())];
    for &p in &[0.02, 0.3] {
        let mut v = base();
        v.gs_prob = p;
        variants.push((format!("gs_prob={p}"), v));
    }
    for &k in &[0.1, 1.0] {
        let mut v = base();
        v.kappa = k;
        variants.push((format!("kappa={k}"), v));
    }
    for &r in &[1u32, 6] {
        let mut v = base();
        v.try_color_repeats = r;
        variants.push((format!("warmup={r}"), v));
    }
    for &b in &[3u32, 10] {
        variants.push((format!("seed_bits={b}"), base().with_seed_bits(b)));
    }
    variants.push(("single_range".into(), base().with_multi_range(false)));
    {
        let mut v = base();
        v.slack_frac = 0.2;
        variants.push(("slack_frac=0.2".into(), v));
    }

    let mut t = Table::new(&[
        "variant",
        "MPC rounds",
        "LOCAL rounds",
        "HKNT stages",
        "deferrals",
        "greedy tail",
        "ms",
    ]);
    for (name, params) in variants {
        let (sol, ms) = timed(|| Solver::deterministic(params).solve(&inst));
        inst.verify_coloring(&sol.colors).unwrap();
        t.row(&[
            s(&name),
            s(sol.cost.mpc_rounds),
            s(sol.cost.local_rounds),
            s(sol.stats.mid_invocations),
            s(sol.stats.total_deferrals),
            s(sol.stats.greedy_finished),
            f1(ms),
        ]);
    }
    t.print();
    println!("\nReading guide: aggressive SSP targets (slack_frac=0.2) defer more;");
    println!("tiny seed spaces degrade the chosen seeds; κ shifts work between");
    println!("SlackColor's two loops; the warm-up length trades rounds for trials.");
}
