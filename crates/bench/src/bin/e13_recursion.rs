//! E13 — LowSpaceColorReduce recursion structure (Section 6): depth and
//! the number of partition levels stay O(1) as n grows, for fixed δ; the
//! sequential dependency chain is bins-parallel + last-bin + mid.

use parcolor_bench::{s, scaled, Table};
use parcolor_core::{Params, SeedStrategy, Solver};
use parcolor_graphgen::{degree_plus_one, gnm};

fn main() {
    println!("# E13: degree-reduction recursion structure\n");
    let sizes: Vec<usize> = if parcolor_bench::quick() {
        vec![400, 800]
    } else {
        vec![500, 1_000, 2_000, 4_000]
    };
    let mut t = Table::new(&[
        "n",
        "avg deg",
        "mid cap",
        "partitions",
        "max depth",
        "moved to mid",
        "MPC rounds",
    ]);
    for &n in &sizes {
        let avg = 40;
        let inst = degree_plus_one(gnm(n, n * avg / 2, 17));
        let params = Params::default()
            .with_seed_bits(5)
            .with_strategy(SeedStrategy::FixedSubset(8))
            .with_mid_degree_cap(16)
            .with_greedy_cutoff(48);
        let sol = Solver::deterministic(params).solve(&inst);
        inst.verify_coloring(&sol.colors).unwrap();
        let moved: usize = sol
            .stats
            .partition_stats
            .iter()
            .map(|p| p.violations_moved_to_mid)
            .sum();
        t.row(&[
            s(n),
            s(avg),
            s(16),
            s(sol.stats.partitions),
            s(sol.stats.max_partition_depth),
            s(moved),
            s(sol.cost.mpc_rounds),
        ]);
    }
    t.print();
    let _ = scaled(0, 0);
    println!("\nDepth must be flat in n for fixed δ (the paper's O(1) depth):");
    println!("each level divides the degree by ~B, so depth ≈ log_B(Δ/threshold).");
}
