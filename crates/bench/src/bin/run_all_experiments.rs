//! Run every experiment binary in sequence (the EXPERIMENTS.md refresh).
//!
//! ```sh
//! cargo run --release -p parcolor-bench --bin run_all_experiments
//! PARCOLOR_QUICK=1 cargo run -p parcolor-bench --bin run_all_experiments
//! ```

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "e1_rounds_vs_n",
    "e2_space",
    "e3_deferral",
    "e4_partition",
    "e5_preshatter",
    "e6_seed_strategies",
    "e7_rand_vs_det",
    "e8_baselines",
    "e9_chunking",
    "e10_mis",
    "e11_acd",
    "e12_slackcolor",
    "e13_recursion",
    "e14_selfreduce",
    "e15_shattering",
    "e16_ablation",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n{}\n=== {} ===\n", "=".repeat(72), name);
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failures.push(*name);
        }
    }
    println!("\n{}", "=".repeat(72));
    if failures.is_empty() {
        println!("all {} experiments completed", EXPERIMENTS.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
