//! E10 — framework generality (paper §4.1): Luby's MIS derandomized with
//! the same PRG + conditional-expectations stack as coloring.

use parcolor_bench::{f2, s, scaled, timed, Table};
use parcolor_core::mis::{
    derandomized_luby_mis, derandomized_luby_mis_sharded, luby_mis, verify_mis,
};
use parcolor_core::SeedStrategy;
use parcolor_graphgen::{gnm, power_law, torus};

fn main() {
    println!("# E10: Luby MIS — randomized vs derandomized\n");
    let n = scaled(6_000, 1_000);
    let side = (n as f64).sqrt() as usize;
    let suite = vec![
        ("gnm d=10", gnm(n, n * 5, 1)),
        ("powerlaw", power_law(n, 2.5, 8.0, 2)),
        ("torus", torus(side, side)),
    ];

    let mut t = Table::new(&[
        "instance",
        "method",
        "rounds",
        "|MIS|",
        "max round defers",
        "ms",
    ]);
    for (name, g) in &suite {
        let (r, ms) = timed(|| luby_mis(g, 7, 10_000));
        verify_mis(g, &r.in_mis).unwrap();
        t.row(&[
            s(name),
            s("randomized"),
            s(r.rounds),
            s(r.in_mis.iter().filter(|&&b| b).count()),
            s("-"),
            parcolor_bench::f1(ms),
        ]);
        let (d, ms) = timed(|| derandomized_luby_mis(g, 7, SeedStrategy::FixedSubset(32), 10_000));
        verify_mis(g, &d.in_mis).unwrap();
        t.row(&[
            s(name),
            s("derandomized"),
            s(d.rounds),
            s(d.in_mis.iter().filter(|&&b| b).count()),
            s(d.deferrals_per_round.iter().copied().max().unwrap_or(0)),
            parcolor_bench::f1(ms),
        ]);
        // Guarantee audit.
        for (cost, mean) in &d.guarantee_checks {
            assert!(cost <= &(mean + 1e-9), "guarantee violated");
        }
    }
    t.print();
    println!("\nDerandomized rounds stay within a small factor of randomized —");
    println!("and every round's chosen seed beat the seed-space mean (audited).");
    let g = gnm(scaled(2_000, 500), scaled(2_000, 500) * 4, 9);
    let a = derandomized_luby_mis(&g, 7, SeedStrategy::Exhaustive, 10_000);
    let b = derandomized_luby_mis(&g, 7, SeedStrategy::Exhaustive, 10_000);
    assert_eq!(a.in_mis, b.in_mis);
    println!("Determinism check on a fresh instance: identical MIS twice ✓");
    println!(
        "(exhaustive mean-vs-chosen on round 1: {:.2} vs {:.0})",
        a.guarantee_checks[0].1, a.guarantee_checks[0].0
    );
    // Sharded seed search must be invisible in the output.  The baseline
    // pins the serial (workers = 1) fold explicitly — `a` above runs with
    // auto workers, which is all host threads on a multi-core box.
    let w1 = derandomized_luby_mis_sharded(&g, 7, SeedStrategy::Exhaustive, 10_000, 1);
    assert_eq!(a.in_mis, w1.in_mis, "workers = 1 changed the MIS");
    for workers in [2usize, 4] {
        let w = derandomized_luby_mis_sharded(&g, 7, SeedStrategy::Exhaustive, 10_000, workers);
        assert_eq!(w1.in_mis, w.in_mis, "workers = {workers} changed the MIS");
    }
    println!("Worker-sharding check: identical MIS at workers ∈ {{1, 2, 4}} ✓");
    let _ = f2(0.0);
}
