//! e19: SIMD kernel microbench — per-path `splitmix4` / `lane_eq_mask8`
//! throughput, plus an end-to-end seed search forced scalar vs the best
//! runtime-detected path.
//!
//! Every kernel variant is bit-identical to the scalar reference (the
//! dispatch contract in `parcolor_local::simd`), so the only thing that
//! may differ between paths is wall-clock time; this binary asserts the
//! bit-identity on the end-to-end leg and reports the speedups.  The
//! per-kernel legs use [`parcolor_core::simd::kernels_for`] directly and
//! never touch the process-wide selection, so they are safe to extend
//! without worrying about dispatch state.
//!
//! Writes `BENCH_simd.json` (consumed by CI's portable-simd job).

use parcolor_bench::{f1, f2, s, scaled, timed, Table};
use parcolor_core::simd::{self, KernelTable, SimdPath};
use parcolor_core::{D1lcInstance, Params, Solver};
use parcolor_graphgen::gnm;
use std::hint::black_box;

/// Throughput of `splitmix4` in ns per 4-lane call: independent inputs
/// per iteration (the tape fill loops hash independent counter blocks,
/// so ILP is representative), XOR-folded so nothing is dead code.
fn bench_splitmix4(k: &KernelTable, iters: usize) -> f64 {
    let mut acc = [0u64; simd::SPLITMIX_LANES];
    let (_, ms) = timed(|| {
        for i in 0..iters as u64 {
            let out = (k.splitmix4)([i, i ^ 0x9E37_79B9, i.wrapping_mul(3), !i]);
            for (a, o) in acc.iter_mut().zip(out) {
                *a ^= o;
            }
        }
        black_box(acc);
    });
    ms * 1e6 / iters as f64
}

/// Throughput of `lane_eq_mask8` in ns per 8-lane call.
fn bench_lane_eq(k: &KernelTable, iters: usize) -> f64 {
    let a: [u32; 8] = std::array::from_fn(|i| i as u32);
    let mut acc = 0u8;
    let (_, ms) = timed(|| {
        for i in 0..iters as u32 {
            let b: [u32; 8] = std::array::from_fn(|l| (i.wrapping_add(l as u32)) & 7);
            acc ^= (k.lane_eq_mask8)(&a, &b);
        }
        black_box(acc);
    });
    ms * 1e6 / iters as f64
}

/// FNV-1a over a coloring, for the end-to-end bit-identity assert.
fn fnv(colors: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in colors {
        for byte in c.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn main() {
    let available = simd::available_paths();
    let detected = simd::detected_path();
    let names: Vec<&str> = available.iter().map(|p| p.name()).collect();
    println!(
        "# e19: SIMD kernels (detected = {detected}, available = {})",
        names.join(", ")
    );

    // --- Per-kernel throughput, every available path -------------------
    let iters = scaled(1 << 23, 1 << 18);
    println!("\n## Kernel throughput ({iters} calls per leg)");
    let mut t = Table::new(&["kernel", "path", "ns/call", "speedup vs scalar"]);
    let mut kernel_rows = Vec::new();
    let scalar = simd::kernels_for(SimdPath::Scalar).expect("scalar is always available");
    for (kernel, bench) in [
        (
            "splitmix4",
            bench_splitmix4 as fn(&KernelTable, usize) -> f64,
        ),
        ("lane_eq_mask8", bench_lane_eq),
    ] {
        // Warm + baseline.
        let _ = bench(scalar, iters / 8);
        let base = bench(scalar, iters);
        for &path in &available {
            let k = simd::kernels_for(path).expect("available path has a table");
            let ns = if path == SimdPath::Scalar {
                base
            } else {
                bench(k, iters)
            };
            t.row(&[s(kernel), s(path), f2(ns), f2(base / ns.max(1e-12))]);
            kernel_rows.push(format!(
                "    {{\"kernel\": \"{kernel}\", \"path\": \"{path}\", \"ns_per_call\": {ns:.3}, \
                 \"speedup_vs_scalar\": {:.2}}}",
                base / ns.max(1e-12)
            ));
        }
    }
    t.print();

    // --- End-to-end: full solve forced scalar vs every path ------------
    let n = scaled(4_000, 256);
    let seed_bits = scaled(10, 5) as u32;
    let g = gnm(n, n * 4, 7);
    let inst = D1lcInstance::delta_plus_one(g);
    println!("\n## End-to-end solve (gnm n = {n}, seed_bits = {seed_bits})");
    let mut t = Table::new(&["path", "ms", "speedup vs scalar", "coloring hash"]);
    let mut e2e_rows = Vec::new();
    let mut scalar_ms = 0.0;
    let mut scalar_hash = 0u64;
    for &path in &available {
        let params = Params::default().with_seed_bits(seed_bits).with_simd(path);
        let (sol, ms) = timed(|| Solver::deterministic(params).solve(&inst));
        inst.verify_coloring(&sol.colors).expect("valid coloring");
        let h = fnv(&sol.colors);
        if path == SimdPath::Scalar {
            scalar_ms = ms;
            scalar_hash = h;
        }
        assert_eq!(
            h, scalar_hash,
            "{path}: coloring differs from forced-scalar run — dispatch contract violated"
        );
        t.row(&[
            s(path),
            f1(ms),
            f2(scalar_ms / ms.max(1e-9)),
            format!("{h:#018x}"),
        ]);
        e2e_rows.push(format!(
            "    {{\"path\": \"{path}\", \"ms\": {ms:.1}, \"speedup_vs_scalar\": {:.2}, \
             \"coloring_hash\": \"{h:#018x}\"}}",
            scalar_ms / ms.max(1e-9)
        ));
    }
    simd::reset_auto();
    t.print();
    println!("\nIdentical coloring hash on every path (asserted).");

    // --- JSON -----------------------------------------------------------
    let json = format!(
        "{{\n  \"experiment\": \"e19_simd_kernels\",\n  \"simd_path\": \"{detected}\",\n  \
         \"available\": [{}],\n  \"kernels\": [\n{}\n  ],\n  \"end_to_end\": [\n{}\n  ]\n}}\n",
        names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", "),
        kernel_rows.join(",\n"),
        e2e_rows.join(",\n")
    );
    match std::fs::write("BENCH_simd.json", &json) {
        Ok(()) => println!("\nwrote BENCH_simd.json"),
        Err(e) => eprintln!("\ncannot write BENCH_simd.json: {e}"),
    }
}
