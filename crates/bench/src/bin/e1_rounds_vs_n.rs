//! E1 — Theorem 1's headline shape: deterministic D1LC round counts grow
//! like `O(log log log n)` (near-flat), matching the randomized pipeline
//! (Lemma 4) up to a constant factor.
//!
//! Regenerates the "rounds vs n" table of EXPERIMENTS.md.

use parcolor_bench::{f1, f2, s, scaled, timed, Table};
use parcolor_core::{Params, SeedStrategy, Solver};
use parcolor_graphgen::{degree_plus_one, gnm};

fn main() {
    println!("# E1: MPC rounds vs n (Theorem 1 vs Lemma 4)\n");
    let sizes: Vec<usize> = if parcolor_bench::quick() {
        vec![512, 2_048, 8_192]
    } else {
        vec![1_000, 4_000, 16_000, 64_000]
    };
    let avg_deg = scaled(12, 8);
    let params = Params::default()
        .with_seed_bits(6)
        .with_strategy(SeedStrategy::FixedSubset(16));

    let mut t = Table::new(&[
        "n",
        "m",
        "lglglg n",
        "det MPC rounds",
        "det LOCAL rounds",
        "rand MPC rounds",
        "det ms",
        "rand ms",
    ]);
    for &n in &sizes {
        let m = n * avg_deg / 2;
        let inst = degree_plus_one(gnm(n, m, 42));
        let (det, det_ms) = timed(|| Solver::deterministic(params.clone()).solve(&inst));
        let (rnd, rnd_ms) = timed(|| Solver::randomized(params.clone(), 7).solve(&inst));
        inst.verify_coloring(&det.colors).unwrap();
        inst.verify_coloring(&rnd.colors).unwrap();
        let lglglg = (n as f64).ln().ln().ln();
        t.row(&[
            s(n),
            s(m),
            f2(lglglg),
            s(det.cost.mpc_rounds),
            s(det.cost.local_rounds),
            s(rnd.cost.mpc_rounds),
            f1(det_ms),
            f1(rnd_ms),
        ]);
    }
    t.print();
    println!(
        "\nShape check: rounds should be near-flat while n grows {}x.",
        sizes.last().unwrap() / sizes[0]
    );
}
