//! E8 — the D1LC solver against classical baselines: sequential greedy,
//! random-order greedy, and the plain randomized LOCAL loop, across graph
//! families and palette regimes.  All must verify; the comparison is
//! rounds, colors used, and wall-clock.

use parcolor_bench::{f1, s, scaled, timed, Table};
use parcolor_core::baselines::{
    colors_used, greedy_sequential, luby_style_local, random_order_greedy,
};
use parcolor_core::{Params, SeedStrategy, Solver};
use parcolor_graphgen as gen;

fn main() {
    println!("# E8: solver vs baselines\n");
    let n = scaled(6_000, 1_000);
    let suite = vec![
        ("gnm", gen::degree_plus_one(gen::gnm(n, n * 5, 1))),
        (
            "lists",
            gen::random_lists(gen::gnm(n, n * 5, 2), 4 * n as u32, 3, 3),
        ),
        (
            "powerlaw",
            gen::degree_plus_one(gen::power_law(n, 2.5, 10.0, 4)),
        ),
        (
            "planted",
            gen::degree_plus_one(gen::planted_cliques(&[40, 36, 32], 0.1, n, 6, 5)),
        ),
    ];
    let params = Params::default()
        .with_seed_bits(6)
        .with_strategy(SeedStrategy::FixedSubset(16));

    let mut t = Table::new(&["instance", "method", "rounds", "colors used", "ms"]);
    for (name, inst) in &suite {
        let (det, ms) = timed(|| Solver::deterministic(params.clone()).solve(inst));
        inst.verify_coloring(&det.colors).unwrap();
        t.row(&[
            s(name),
            s("deterministic MPC"),
            s(det.cost.mpc_rounds),
            s(colors_used(&det.colors)),
            f1(ms),
        ]);
        let ((gc, _), ms) = timed(|| greedy_sequential(inst));
        t.row(&[
            s(name),
            s("greedy (id order)"),
            s("n (seq)"),
            s(colors_used(&gc)),
            f1(ms),
        ]);
        let ((rc, _), ms) = timed(|| random_order_greedy(inst, 7));
        t.row(&[
            s(name),
            s("greedy (rand order)"),
            s("n (seq)"),
            s(colors_used(&rc)),
            f1(ms),
        ]);
        let ((lc, lres), ms) = timed(|| luby_style_local(inst, 7, 100_000));
        t.row(&[
            s(name),
            s("randomized LOCAL"),
            s(lres.rounds),
            s(colors_used(&lc)),
            f1(ms),
        ]);
    }
    t.print();
    println!("\nAll methods produce proper palette-respecting colorings; the MPC");
    println!("pipeline pays wall-clock for its round/space guarantees.");
}
