//! E12 — SlackColor's `O(log* n)` shape: steps-to-completion vs the slack
//! available, on regular graphs with inflated palettes (initial slack is
//! exactly the palette surplus).  More slack ⇒ *fewer* steps: with large
//! slack the TryRandomColor warm-up already finishes, and the MultiTrial
//! doubling schedule only engages in the low-slack regime — the log*
//! schedule's length is bounded by log*(s_min) either way.

use parcolor_bench::{f2, s, scaled, Table};
use parcolor_core::framework::Runner;
use parcolor_core::hknt::slack_color::slack_color;
use parcolor_core::instance::{ColoringState, D1lcInstance, PaletteArena};
use parcolor_core::{NodeId, Params, SeedStrategy};
use parcolor_graphgen::random_regular;
use parcolor_local::engine::log_star;

/// Degree-16 regular graph with palettes of size 17 + extra: every node
/// starts with slack ≈ extra on a stage that cannot finish in the warm-up.
fn slack_regular(n: usize, extra: usize, seed: u64) -> D1lcInstance {
    let g = random_regular(n, 16, seed);
    let lists: Vec<Vec<u32>> = (0..n as NodeId)
        .map(|v| (0..(g.degree(v) + 1 + extra) as u32).collect())
        .collect();
    D1lcInstance::new(g, PaletteArena::from_lists(&lists))
}

fn main() {
    println!("# E12: SlackColor steps vs available slack (log* shape)\n");
    let n = scaled(4_000, 800);
    let params = Params::default()
        .with_seed_bits(6)
        .with_strategy(SeedStrategy::FixedSubset(16));

    let mut t = Table::new(&[
        "initial slack",
        "log*(slack)",
        "steps",
        "colored %",
        "deferred %",
        "rho",
        "finished in",
    ]);
    for &extra in &[2usize, 6, 14, 30, 62] {
        let inst = slack_regular(n, extra, 7);
        let mut state = ColoringState::new(&inst);
        let mut runner = Runner::derandomized(&inst.graph, &params, n);
        let nodes: Vec<NodeId> = (0..n as NodeId).collect();
        let rep = slack_color(&mut runner, &mut state, &params, &nodes, "e12");
        t.row(&[
            s(extra),
            s(log_star(extra as f64)),
            s(rep.steps),
            f2(100.0 * rep.colored as f64 / rep.participants as f64),
            f2(100.0 * rep.deferred as f64 / rep.participants as f64),
            f2(rep.rho),
            s(if rep.s_min == 0 {
                "warm-up"
            } else {
                "multitrial"
            }),
        ]);
    }
    t.print();
    println!("\nSteps are bounded by a log*-length schedule at every slack level —");
    println!("flat (or falling) step counts while the slack grows 30×, with");
    println!("near-total coloring and negligible deferral.");
}
