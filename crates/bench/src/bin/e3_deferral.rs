//! E3 — Lemma 10's deferral guarantee, per derandomized procedure: the
//! chosen seed's SSP-failure count vs the seed-space mean and the paper's
//! bound `1/2 + n_G · Δ^{-11τ}` (the bound is astronomically small at
//! paper scale; here we report mean vs chosen to show the conditional-
//! expectations mechanism doing its job).

use parcolor_bench::{f2, s, scaled, Table};
use parcolor_core::{Params, SeedStrategy, Solver};
use parcolor_graphgen::{degree_plus_one, gnm, planted_cliques};

fn main() {
    println!("# E3: per-procedure deferrals — chosen seed vs seed-space mean\n");
    let n = scaled(4_000, 800);
    let instances = vec![
        ("gnm", degree_plus_one(gnm(n, n * 5, 3))),
        (
            "planted",
            degree_plus_one(planted_cliques(&[30, 30, 24], 0.1, n, 6, 4)),
        ),
    ];
    let params = Params::default()
        .with_seed_bits(7)
        .with_strategy(SeedStrategy::Exhaustive);

    let mut t = Table::new(&[
        "instance",
        "procedure",
        "active",
        "chosen failures",
        "mean failures",
        "guarantee",
    ]);
    for (name, inst) in instances {
        let sol = Solver::deterministic(params.clone()).solve(&inst);
        inst.verify_coloring(&sol.colors).unwrap();
        // Aggregate per procedure name.
        let mut agg: std::collections::BTreeMap<&str, (usize, f64, f64, usize)> =
            std::collections::BTreeMap::new();
        for step in &sol.stats.steps {
            if let Some(sel) = &step.selection {
                let e = agg.entry(step.name).or_insert((0, 0.0, 0.0, 0));
                e.0 += step.active;
                e.1 += sel.cost;
                e.2 += sel.mean_cost;
                e.3 += 1;
            }
        }
        for (proc, (active, cost, mean, k)) in agg {
            t.row(&[
                s(name),
                format!("{proc} (×{k})"),
                s(active),
                f2(cost),
                f2(mean),
                s(if cost <= mean + 1e-9 {
                    "OK"
                } else {
                    "VIOLATED"
                }),
            ]);
        }
    }
    t.print();
    println!("\nEvery row must read OK: the chosen seed never exceeds the mean,");
    println!("which is the inequality Lemma 10's expectation argument needs.");
}
