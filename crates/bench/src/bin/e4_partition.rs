//! E4 — Lemma 23: one LowSpacePartition level achieves in-bin degree
//! `d'(v) < 2 d(v)/B` and valid restricted palettes, across densities and
//! bin counts.  Reports the worst realized degree ratio (paper: < 2) and
//! both violation classes.

use parcolor_bench::{f2, s, scaled, Table};
use parcolor_core::instance::ColoringState;
use parcolor_core::reduce::low_space_partition;
use parcolor_graphgen::{degree_plus_one, gnm};

fn main() {
    println!("# E4: LowSpacePartition quality (Lemma 23)\n");
    let n = scaled(4_000, 1_000);
    let mut t = Table::new(&[
        "avg deg",
        "bins B",
        "high nodes",
        "worst d'·B/d",
        "soft (deg) viol",
        "hard (palette) viol",
        "seeds tried",
    ]);
    for &avg in &[30usize, 60, 120] {
        for &bins in &[3usize, 4, 8] {
            let inst = degree_plus_one(gnm(n, n * avg / 2, avg as u64));
            let state = ColoringState::new(&inst);
            let nodes = state.uncolored_nodes();
            let threshold = avg / 3;
            let out = low_space_partition(&inst.graph, &state, &nodes, threshold, bins, 128);
            t.row(&[
                s(avg),
                s(bins),
                s(out.stats.high_nodes),
                f2(out.stats.worst_degree_ratio),
                s(out.stats.soft_degree_violations),
                s(out.stats.violations_moved_to_mid),
                s(out.stats.seeds_tried),
            ]);
        }
    }
    t.print();
    println!("\nLemma 23 regime is d ≫ B³: violations vanish toward the bottom-left");
    println!("(high degree, few bins) and the worst ratio approaches the paper's 2.");
}
