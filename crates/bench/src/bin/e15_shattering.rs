//! E15 — the shattering argument (Section 2.2 / HKNT22): nodes that a
//! randomized HKNT stage fails to color form *small connected components*,
//! which is what lets the deterministic low-degree finisher absorb them.
//! We measure the component-size distribution of the failed set directly.

use parcolor_bench::{f2, s, scaled, Table};
use parcolor_core::framework::Runner;
use parcolor_core::hknt::pipeline::color_middle;
use parcolor_core::instance::ColoringState;
use parcolor_core::{NodeId, Params};
use parcolor_graphgen::{degree_plus_one, gnm, power_law};

fn main() {
    println!("# E15: shattering — components of post-stage failed nodes\n");
    let n = scaled(8_000, 1_500);
    let suite = vec![
        ("gnm d=12", degree_plus_one(gnm(n, n * 6, 1))),
        ("gnm d=20", degree_plus_one(gnm(n, n * 10, 2))),
        ("powerlaw", degree_plus_one(power_law(n, 2.5, 10.0, 3))),
    ];
    let params = Params::default(); // randomized runner below

    let mut t = Table::new(&[
        "instance",
        "stage size",
        "failed",
        "failed %",
        "components",
        "largest comp",
        "mean comp",
    ]);
    for (name, inst) in &suite {
        let mut state = ColoringState::new(inst);
        let mut runner = Runner::randomized(&inst.graph, &params, 77, inst.n());
        let stage: Vec<NodeId> = state.uncolored_nodes();
        let stage_size = stage.len();
        color_middle(&mut runner, &mut state, &params, &stage);
        // Failed = stage nodes left uncolored (deferred or otherwise).
        let failed: Vec<NodeId> = stage
            .iter()
            .copied()
            .filter(|&v| !state.is_colored(v))
            .collect();
        let (ncomp, largest, mean) = if failed.is_empty() {
            (0, 0, 0.0)
        } else {
            let (sub, _) = inst.graph.induced(&failed);
            let (comp, k) = sub.components();
            let mut sizes = vec![0usize; k];
            for &c in &comp {
                sizes[c as usize] += 1;
            }
            let largest = sizes.iter().copied().max().unwrap_or(0);
            let mean = failed.len() as f64 / k.max(1) as f64;
            (k, largest, mean)
        };
        t.row(&[
            s(name),
            s(stage_size),
            s(failed.len()),
            f2(100.0 * failed.len() as f64 / stage_size.max(1) as f64),
            s(ncomp),
            s(largest),
            f2(mean),
        ]);
    }
    t.print();
    println!("\nShattering shape: the failed set is a vanishing fraction of the");
    println!("stage and its components are tiny relative to n — the precondition");
    println!("for finishing them deterministically (paper §2.2, post-shattering).");
}
