//! E14 — self-reducibility (Definition 11), measured: the invariant
//! `p(v) ≥ d(v) + 1` under randomized partial colorings, and the slack
//! *gain* from deferrals (the WSP mechanism: deferring can only help).

use parcolor_bench::{f2, s, scaled, Table};
use parcolor_core::instance::ColoringState;
use parcolor_core::{D1lcInstance, NodeId};
use parcolor_graphgen::{gnm, power_law};
use parcolor_local::tape::SplitMix;

fn main() {
    println!("# E14: self-reducibility invariant + deferral slack gain\n");
    let n = scaled(4_000, 800);
    let suite = vec![
        ("gnm d=10", gnm(n, n * 5, 1)),
        ("powerlaw", power_law(n, 2.5, 8.0, 2)),
    ];

    let mut t = Table::new(&[
        "instance",
        "colored %",
        "min slack",
        "mean slack",
        "invariant",
    ]);
    for (name, g) in &suite {
        let inst = D1lcInstance::delta_plus_one(g.clone());
        let mut state = ColoringState::new(&inst);
        let mut rng = SplitMix::new(33);
        // Random valid partial coloring of ~60% of nodes, one at a time.
        for _ in 0..(n * 6 / 10) {
            let unc = state.uncolored_nodes();
            if unc.is_empty() {
                break;
            }
            let v = unc[rng.below(unc.len() as u64) as usize];
            let pal = state.palette(v).to_vec();
            let c = pal[rng.below(pal.len() as u64) as usize];
            state.apply_adoptions(g, &[(v, c)]);
        }
        let unc = state.uncolored_nodes();
        let slacks: Vec<i64> = unc.iter().map(|&v| state.slack(v)).collect();
        let min_slack = slacks.iter().copied().min().unwrap_or(0);
        let mean_slack = slacks.iter().sum::<i64>() as f64 / slacks.len().max(1) as f64;
        t.row(&[
            s(name),
            f2(100.0 * state.colored_count() as f64 / n as f64),
            s(min_slack),
            f2(mean_slack),
            s(if state.invariant_violation().is_none() {
                "holds (p ≥ d+1)"
            } else {
                "VIOLATED"
            }),
        ]);
    }
    t.print();

    // Deferral gain: stage slack with X% of the stage deferred.
    println!("\nDeferral slack gain (gnm instance, stage = all nodes):");
    let g = &suite[0].1;
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);
    let mut t2 = Table::new(&["deferred %", "mean stage slack", "min stage slack"]);
    for &pct in &[0usize, 10, 25, 50] {
        let keep: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| (v as usize * 100 / n) % 100 >= pct)
            .collect();
        let mask = {
            let mut m = vec![false; n];
            for &v in &keep {
                m[v as usize] = true;
            }
            m
        };
        let slacks: Vec<i64> = keep
            .iter()
            .map(|&v| {
                let d = g.neighbors(v).iter().filter(|&&u| mask[u as usize]).count() as i64;
                state.palette_size(v) as i64 - d
            })
            .collect();
        t2.row(&[
            s(pct),
            f2(slacks.iter().sum::<i64>() as f64 / slacks.len().max(1) as f64),
            s(slacks.iter().copied().min().unwrap_or(0)),
        ]);
    }
    t2.print();
    println!("\nMean stage slack rises monotonically with the deferred fraction —");
    println!("the WSP mechanism of Definition 5, measured.");
}
