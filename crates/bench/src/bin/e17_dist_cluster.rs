//! E17 — distributed seed search on a loopback cluster: wall-clock and
//! fault-tolerance accounting for the coordinator/worker protocol
//! against the single-machine baseline, clean and under chaos.
//!
//! Every variant must select the same seeds and emit the bit-identical
//! coloring (asserted); what varies is the path the work takes — local
//! pool, a healthy fleet, a fleet with a kill-looped worker, a fleet
//! with a straggler past every lease deadline.  Writes
//! `BENCH_dist.json` with re-issue/eviction counters and wall times.

use parcolor_bench::{f1, s, scaled, timed, Table};
use parcolor_core::{D1lcInstance, Params, SeedStrategy, Solver};
use parcolor_dist::{
    solve_on_cluster, solve_on_failover_cluster, ChaosConfig, DistConfig, DistStats,
    FailoverSchedule, KillSpec,
};
use parcolor_graphgen as gen;

fn decode(job: &[u8]) -> (D1lcInstance, Params) {
    let p: Vec<&str> = std::str::from_utf8(job)
        .unwrap()
        .split_whitespace()
        .collect();
    let inst = gen::degree_plus_one(gen::gnm(
        p[0].parse().unwrap(),
        p[1].parse().unwrap(),
        p[2].parse().unwrap(),
    ));
    let params = Params::default()
        .with_seed_bits(p[3].parse().unwrap())
        .with_strategy(SeedStrategy::Exhaustive);
    (inst, params)
}

fn cfg(min_workers: usize) -> DistConfig {
    DistConfig {
        lease_timeout_ms: 40,
        poll_ms: 2,
        local_patience_ms: 500,
        min_workers,
        min_worker_wait_ms: 10_000,
        connect_backoff_ms: 10,
        max_backoff_ms: 100,
        idle_reconnect_ms: 500,
        ..DistConfig::default()
    }
}

struct Row {
    variant: &'static str,
    ms: f64,
    stats: DistStats,
    /// Failover scenario only: did the standby promote, and how many
    /// units did it tail off the primary's replication stream.
    promoted: bool,
    replicated_units: u64,
}

fn main() {
    println!("# E17: distributed seed search (loopback cluster)\n");
    let n = scaled(2_000, 500);
    let job = format!("{n} {} 29 8", n * 5).into_bytes();

    let (expected, local_ms) = timed(|| {
        let (inst, params) = decode(&job);
        let sol = Solver::deterministic(params).solve(&inst);
        inst.verify_coloring(&sol.colors).unwrap();
        sol.colors
    });

    let variants: Vec<(&'static str, usize, Vec<Option<ChaosConfig>>)> = vec![
        ("cluster_2", 2, vec![None, None]),
        (
            "cluster_2_killer",
            2,
            vec![None, Some(ChaosConfig::killer(91, 11))],
        ),
        (
            "cluster_2_straggler",
            2,
            vec![None, Some(ChaosConfig::straggler(92, 80, 40))],
        ),
        ("coordinator_alone", 0, vec![]),
    ];

    let mut rows = vec![Row {
        variant: "local",
        ms: local_ms,
        stats: DistStats::default(),
        promoted: false,
        replicated_units: 0,
    }];
    for (variant, nworkers, chaos) in variants {
        let (out, ms) = timed(|| solve_on_cluster(&job, decode, nworkers, &chaos, cfg(nworkers)));
        assert_eq!(
            out.coordinator.colors, expected,
            "{variant}: distributed coloring diverged"
        );
        for (i, w) in out.workers.iter().enumerate() {
            if let Some(w) = w {
                assert_eq!(w.colors, expected, "{variant}: worker {i} replica diverged");
            }
        }
        rows.push(Row {
            variant,
            ms,
            stats: out.stats,
            promoted: false,
            replicated_units: 0,
        });
    }

    // Failover scenario: kill the primary mid-fold, the standby tails
    // the replication stream, promotes, and finishes — bit-identically.
    {
        let (out, ms) = timed(|| {
            solve_on_failover_cluster(
                &job,
                decode,
                2,
                FailoverSchedule {
                    primary_kill: Some(KillSpec::after_units(6)),
                    standby_kill: None,
                },
                cfg(2),
            )
        });
        assert!(out.primary_killed, "failover: kill switch must fire");
        assert!(out.standby_stats.promoted, "failover: standby must promote");
        let standby = out.standby.as_ref().expect("failover: standby finished");
        assert_eq!(
            standby.colors, expected,
            "failover: standby coloring diverged"
        );
        for (i, w) in out.workers.iter().enumerate() {
            if let Some(w) = w {
                assert_eq!(w.colors, expected, "failover: worker {i} replica diverged");
            }
        }
        rows.push(Row {
            variant: "failover_kill_mid_fold",
            ms,
            stats: out.standby_coord_stats,
            promoted: true,
            replicated_units: out.standby_stats.replicated_units,
        });
    }

    let mut t = Table::new(&[
        "variant",
        "ms",
        "remote units",
        "local units",
        "reissued",
        "expired",
        "duplicates",
        "replayed",
        "evictions",
    ]);
    for r in &rows {
        t.row(&[
            s(r.variant),
            f1(r.ms),
            s(r.stats.remote_units),
            s(r.stats.local_units),
            s(r.stats.reissued),
            s(r.stats.expired),
            s(r.stats.duplicates),
            s(r.stats.replayed_units),
            s(r.stats.evictions),
        ]);
    }
    t.print();
    println!("\nBit-identical coloring on every variant (asserted).");

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"variant\": \"{}\", \"ms\": {:.1}, \"remote_units\": {}, \
                 \"local_units\": {}, \"granted\": {}, \"reissued\": {}, \"expired\": {}, \
                 \"orphaned\": {}, \"duplicates\": {}, \"fenced\": {}, \"replayed\": {}, \
                 \"evictions\": {}, \"disconnects\": {}, \"promoted\": {}, \
                 \"replicated_units\": {}}}",
                r.variant,
                r.ms,
                r.stats.remote_units,
                r.stats.local_units,
                r.stats.granted,
                r.stats.reissued,
                r.stats.expired,
                r.stats.orphaned,
                r.stats.duplicates,
                r.stats.fenced,
                r.stats.replayed_units,
                r.stats.evictions,
                r.stats.disconnects,
                r.promoted,
                r.replicated_units
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e17_dist_cluster\",\n  \"n\": {n},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_dist.json", &json) {
        Ok(()) => println!("wrote BENCH_dist.json"),
        Err(e) => eprintln!("cannot write BENCH_dist.json: {e}"),
    }
}
