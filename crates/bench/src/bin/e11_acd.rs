//! E11 — almost-clique decomposition quality (Definition 3) on planted
//! instances: recall of planted cliques, classification of the sparse
//! cloud, and violations of properties (iii)/(iv).

use parcolor_bench::{f2, s, scaled, Table};
use parcolor_core::hknt::acd::{compute_acd, NodeClass};
use parcolor_core::instance::ColoringState;
use parcolor_core::node_params::compute_params;
use parcolor_core::{D1lcInstance, NodeId, Params};
use parcolor_graphgen::planted_cliques;

fn main() {
    println!("# E11: ACD quality on planted almost-cliques\n");
    let sparse_n = scaled(3_000, 600);
    let mut t = Table::new(&[
        "clique size",
        "eps (removed)",
        "cliques found",
        "planted",
        "clique recall %",
        "cloud as dense",
        "def3 violations",
    ]);
    for &(size, k) in &[(24usize, 4usize), (40, 3), (64, 2)] {
        for &eps in &[0.0, 0.1, 0.2] {
            let sizes = vec![size; k];
            let g = planted_cliques(&sizes, eps, sparse_n, 6, 42);
            let inst = D1lcInstance::delta_plus_one(g.clone());
            let st = ColoringState::new(&inst);
            let nodes: Vec<NodeId> = (0..g.n() as NodeId).collect();
            let active = vec![true; g.n()];
            let params = Params::default();
            let table = compute_params(&g, &st, &nodes, &active);
            let acd = compute_acd(&g, &nodes, &active, &table, &params);
            // Recall: planted-clique members classified Dense.
            let clique_total: usize = sizes.iter().sum();
            let recalled = (0..clique_total as NodeId)
                .filter(|&v| matches!(acd.class[v as usize], NodeClass::Dense(_)))
                .count();
            let cloud_dense = (clique_total as NodeId..g.n() as NodeId)
                .filter(|&v| matches!(acd.class[v as usize], NodeClass::Dense(_)))
                .count();
            let violations = acd.violations(&g, &active, &table, &params).len();
            t.row(&[
                s(size),
                f2(eps),
                s(acd.cliques.len()),
                s(k),
                f2(100.0 * recalled as f64 / clique_total as f64),
                s(cloud_dense),
                s(violations),
            ]);
        }
    }
    t.print();
    println!("\nShape: recall near 100% at eps=0, degrading gracefully as planted");
    println!("cliques blur; the sparse cloud should (almost) never turn dense.");
}
