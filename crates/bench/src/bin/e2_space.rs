//! E2 — Theorem 1's space bounds: per-machine peak ≤ s = O(n^φ) and the
//! global budget O(m + n^{1+φ}) holds, across φ.

use parcolor_bench::{f3, s, scaled, Table};
use parcolor_core::{Params, SeedStrategy, Solver};
use parcolor_graphgen::{degree_plus_one, gnm};
use parcolor_mpc::MpcConfig;

fn main() {
    println!("# E2: machine-space compliance vs phi\n");
    let n = scaled(16_000, 2_048);
    let m = n * 6;
    let inst = degree_plus_one(gnm(n, m, 11));

    let mut t = Table::new(&[
        "phi",
        "s = c*n^phi",
        "peak machine words",
        "peak/s",
        "budget violations",
        "MPC rounds",
    ]);
    for &phi in &[0.3, 0.5, 0.7] {
        let params = Params::default()
            .with_phi(phi)
            .with_seed_bits(6)
            .with_strategy(SeedStrategy::FixedSubset(16));
        let sol = Solver::deterministic(params).solve(&inst);
        inst.verify_coloring(&sol.colors).unwrap();
        let s_budget = MpcConfig::new(n, m, phi).local_space();
        t.row(&[
            f3(phi),
            s(s_budget),
            s(sol.cost.max_machine_words),
            f3(sol.cost.max_machine_words as f64 / s_budget as f64),
            s(sol.cost.budget_violations),
            s(sol.cost.mpc_rounds),
        ]);
    }
    t.print();
    println!("\nCompliance requires peak/s ≤ 1 and zero violations at phi ≥ 0.5;");
    println!("small phi on dense inputs shows where the Δ ≤ √s precondition binds.");
}
