//! MPC model configuration: local-space exponent φ and derived budgets.

use serde::Serialize;

/// Configuration of the MPC instance the simulation runs on.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MpcConfig {
    /// Number of nodes of the *original* input graph; space budgets are
    /// always expressed in terms of this `n`, even when working on smaller
    /// induced subgraphs (the paper stresses this in Section 4.3).
    pub n: usize,
    /// Local-space exponent φ ∈ (0, 1): each machine holds `s = c · n^φ`
    /// words.
    pub phi: f64,
    /// The constant `c` in `s = c · n^φ` (the model allows any constant).
    pub space_constant: f64,
    /// Total global words available: `c_g · (m + n^{1+φ})`.  Stored as the
    /// precomputed budget.
    pub global_budget: usize,
}

impl MpcConfig {
    /// Standard configuration for an input with `n` nodes and `m` edges.
    pub fn new(n: usize, m: usize, phi: f64) -> Self {
        assert!(phi > 0.0 && phi < 1.0, "phi must be in (0,1), got {phi}");
        assert!(n > 0);
        let space_constant = 8.0;
        let global_budget = (4.0 * (m as f64 + (n as f64).powf(1.0 + phi))).ceil() as usize + 1024;
        MpcConfig {
            n,
            phi,
            space_constant,
            global_budget,
        }
    }

    /// Builder-style override of the space constant.
    pub fn with_space_constant(mut self, c: f64) -> Self {
        assert!(c > 0.0);
        self.space_constant = c;
        self
    }

    /// Local space per machine, `s = ⌈c · n^φ⌉` words.
    pub fn local_space(&self) -> usize {
        (self.space_constant * (self.n as f64).powf(self.phi)).ceil() as usize
    }

    /// `√s`: the degree bound under which Lemma 17's per-node operations
    /// are legal.
    pub fn sqrt_space(&self) -> usize {
        (self.local_space() as f64).sqrt().floor() as usize
    }

    /// Number of worker machines needed to hold `words` of input.
    pub fn machines_for(&self, words: usize) -> usize {
        words.div_ceil(self.local_space()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_space_scales_with_phi() {
        let a = MpcConfig::new(1 << 16, 1 << 18, 0.5);
        let b = MpcConfig::new(1 << 16, 1 << 18, 0.25);
        assert!(a.local_space() > b.local_space());
        assert_eq!(a.local_space(), (8.0 * 256.0) as usize);
    }

    #[test]
    fn sqrt_space_is_consistent() {
        let cfg = MpcConfig::new(10_000, 50_000, 0.5);
        let s = cfg.local_space();
        let r = cfg.sqrt_space();
        assert!(r * r <= s);
        assert!((r + 1) * (r + 1) > s);
    }

    #[test]
    fn machines_cover_input() {
        let cfg = MpcConfig::new(4096, 10_000, 0.5);
        let s = cfg.local_space();
        assert_eq!(cfg.machines_for(0), 1);
        assert_eq!(cfg.machines_for(s), 1);
        assert_eq!(cfg.machines_for(s + 1), 2);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_phi() {
        MpcConfig::new(100, 100, 1.5);
    }

    #[test]
    fn global_budget_dominates_input() {
        let cfg = MpcConfig::new(1000, 5000, 0.5);
        assert!(cfg.global_budget > 5000 + 1000);
    }
}
