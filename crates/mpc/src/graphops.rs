//! Per-node graph operations with Lemma 17 accounting.
//!
//! Lemma 17 of the paper: if every node has degree at most `√s` and each
//! node is assigned a dedicated machine, then in `O(1)` rounds (i) a node
//! can send `d(v)` words to each neighbor's machine, and (ii) a node's
//! machine can collect all edges among its neighbors (the 2-hop
//! neighborhood).  Global space `O(m + n^{1+φ})` pays for the one-machine-
//! per-node assignment.
//!
//! `NodeMpc` charges these operations: computation is carried out by the
//! caller with rayon over nodes; the accountant verifies the degree bound,
//! charges rounds/messages, and records per-node-machine space against the
//! budget `s`.  This keeps the simulator honest about the two quantities
//! the paper's theorems constrain (rounds, words) without forcing every
//! neighbor scan through a mailbox data structure.

use crate::config::MpcConfig;
use crate::metrics::MpcMetrics;
use parcolor_local::graph::{Graph, NodeId};
use rayon::prelude::*;
use std::sync::Arc;

/// Accountant for Lemma 17-style per-node MPC operations.
pub struct NodeMpc {
    cfg: MpcConfig,
    metrics: Arc<MpcMetrics>,
}

impl NodeMpc {
    /// Create an accountant with fresh metrics.
    pub fn new(cfg: MpcConfig) -> Self {
        NodeMpc {
            cfg,
            metrics: Arc::new(MpcMetrics::new()),
        }
    }

    /// Share the metrics sink of an existing execution.
    pub fn with_metrics(cfg: MpcConfig, metrics: Arc<MpcMetrics>) -> Self {
        NodeMpc { cfg, metrics }
    }

    /// The metrics sink.
    pub fn metrics(&self) -> &MpcMetrics {
        &self.metrics
    }

    /// The model configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }

    /// Does the graph satisfy Lemma 17's precondition `Δ ≤ √s`?
    pub fn degree_bound_ok(&self, g: &Graph) -> bool {
        g.max_degree() <= self.cfg.sqrt_space()
    }

    /// Charge one round in which every node in `active` sends `width`
    /// words to each of its neighbors (Lemma 17, first bullet).  Returns
    /// the number of active nodes.
    pub fn charge_neighbor_broadcast<A>(&self, g: &Graph, active: A, width: usize) -> usize
    where
        A: Fn(NodeId) -> bool + Sync,
    {
        let s = self.cfg.local_space() as u64;
        let (count, msgs) = (0..g.n() as NodeId)
            .into_par_iter()
            .filter(|&v| active(v))
            .map(|v| {
                let w = (g.degree(v) * width) as u64;
                self.metrics.observe_machine(w, s);
                (1usize, w)
            })
            .fold(|| (0usize, 0u64), |a, b| (a.0 + b.0, a.1 + b.1))
            .reduce(|| (0usize, 0u64), |a, b| (a.0 + b.0, a.1 + b.1));
        self.metrics.add_rounds(1);
        self.metrics.add_messages(msgs);
        count
    }

    /// Charge the `O(1)`-round collection of 2-hop neighborhoods for all
    /// active nodes (Lemma 17, second bullet): node `v`'s machine receives
    /// `Σ_{u∈N(v)} d(u)` words.
    pub fn charge_two_hop_collection<A>(&self, g: &Graph, active: A) -> usize
    where
        A: Fn(NodeId) -> bool + Sync,
    {
        let s = self.cfg.local_space() as u64;
        let (count, msgs) = (0..g.n() as NodeId)
            .into_par_iter()
            .filter(|&v| active(v))
            .map(|v| {
                let w: u64 = g.neighbors(v).iter().map(|&u| g.degree(u) as u64).sum();
                self.metrics.observe_machine(w, s);
                (1usize, w)
            })
            .fold(|| (0usize, 0u64), |a, b| (a.0 + b.0, a.1 + b.1))
            .reduce(|| (0usize, 0u64), |a, b| (a.0 + b.0, a.1 + b.1));
        self.metrics.add_rounds(1);
        self.metrics.add_messages(msgs);
        count
    }

    /// Charge `r` rounds of coordination (leader election, converge-casts,
    /// seed broadcast, …) without per-node space effects.
    pub fn charge_rounds(&self, r: u64) {
        self.metrics.add_rounds(r);
    }

    /// Charge the residency of a structure of `words` words on a single
    /// machine (e.g. the "collect the leftover instance onto one machine"
    /// step at the end of Theorem 12).
    pub fn charge_single_machine(&self, words: usize) {
        self.metrics
            .observe_machine(words as u64, self.cfg.local_space() as u64);
    }

    /// Charge holding the graph across machines (baseline residency used
    /// for the global-space accounting of E2).
    pub fn charge_graph_residency(&self, g: &Graph) {
        self.metrics.observe_global(g.words() as u64);
    }
}

/// A materialized 2-hop collection, used by tests to validate that the
/// accounting layer's formula matches a real gather.
pub fn collect_two_hop(g: &Graph, v: NodeId) -> Vec<(NodeId, NodeId)> {
    let mut edges = Vec::new();
    for &u in g.neighbors(v) {
        for &w in g.neighbors(u) {
            edges.push((u, w));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> Graph {
        let edges: Vec<_> = (1..n as NodeId).map(|i| (0, i)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn degree_bound_check() {
        let g = star(100); // Δ = 99
        let small = NodeMpc::new(MpcConfig::new(100, 99, 0.5).with_space_constant(1.0));
        assert!(!small.degree_bound_ok(&g));
        let big = NodeMpc::new(MpcConfig::new(100, 99, 0.99).with_space_constant(200.0));
        assert!(big.degree_bound_ok(&g));
    }

    #[test]
    fn neighbor_broadcast_accounts_words() {
        let g = star(11); // center degree 10, leaves degree 1
        let mpc = NodeMpc::new(MpcConfig::new(11, 10, 0.9).with_space_constant(50.0));
        let n = mpc.charge_neighbor_broadcast(&g, |_| true, 2);
        assert_eq!(n, 11);
        // center sends 10*2 = 20 words; that's the per-machine peak
        assert_eq!(mpc.metrics().max_machine_words(), 20);
        assert_eq!(mpc.metrics().rounds(), 1);
        // total = 20 + 10 leaves * 2
        assert_eq!(mpc.metrics().snapshot().messages, 40);
    }

    #[test]
    fn two_hop_words_match_materialized_gather() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
        let mpc = NodeMpc::new(MpcConfig::new(5, 5, 0.9).with_space_constant(100.0));
        mpc.charge_two_hop_collection(&g, |v| v == 2);
        let expected = collect_two_hop(&g, 2).len() as u64;
        assert_eq!(mpc.metrics().max_machine_words(), expected);
    }

    #[test]
    fn inactive_nodes_are_free() {
        let g = star(11);
        let mpc = NodeMpc::new(MpcConfig::new(11, 10, 0.9).with_space_constant(50.0));
        let n = mpc.charge_neighbor_broadcast(&g, |v| v != 0, 1);
        assert_eq!(n, 10);
        assert_eq!(mpc.metrics().max_machine_words(), 1);
    }

    #[test]
    fn budget_violation_on_tiny_machines() {
        let g = star(50);
        // s = 1 * 50^0.3 ≈ 3 words; center broadcast of 49 words violates.
        let mpc = NodeMpc::new(MpcConfig::new(50, 49, 0.3).with_space_constant(1.0));
        mpc.charge_neighbor_broadcast(&g, |_| true, 1);
        assert!(mpc.metrics().budget_violations() > 0);
    }

    #[test]
    fn single_machine_charge() {
        let mpc = NodeMpc::new(MpcConfig::new(100, 100, 0.5).with_space_constant(1.0));
        let s = mpc.config().local_space();
        mpc.charge_single_machine(s + 1);
        assert_eq!(mpc.metrics().budget_violations(), 1);
    }
}
