//! Materialized record-level MPC engine.
//!
//! Records genuinely live in per-machine buffers; exchanges genuinely move
//! them.  The primitives below are the ones the paper's Section 2.1 takes
//! from Goodrich–Sitchinava–Zhang \[GSZ11\]: constant-round deterministic
//! sorting, prefix sums, and broadcast — "with this tool, we can gather
//! nodes' neighborhoods to contiguous blocks of machines … in O(1) rounds".
//!
//! Round charges: `sort_by_key` charges 3 rounds (sample gather, splitter
//! broadcast, routed exchange), `prefix_sum` charges 2 (converge-cast,
//! scatter), `exchange` and `broadcast` charge 1.  Local computation within
//! a round is free in the model and executed with rayon here.

use crate::config::MpcConfig;
use crate::metrics::MpcMetrics;
use rayon::prelude::*;
use std::sync::Arc;

/// A dataset partitioned across machines.
#[derive(Clone, Debug)]
pub struct Dist<T> {
    /// One buffer per machine.
    pub parts: Vec<Vec<T>>,
}

impl<T> Dist<T> {
    /// Number of machines holding the dataset.
    pub fn machine_count(&self) -> usize {
        self.parts.len()
    }

    /// Total records across machines.
    pub fn len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Whether no machine holds any record.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(Vec::is_empty)
    }

    /// Concatenate all machine buffers (test/inspection helper — a real
    /// MPC could not do this, so production code must not rely on it).
    pub fn gather(self) -> Vec<T> {
        self.parts.into_iter().flatten().collect()
    }
}

/// The cluster: a machine-count, a per-machine word budget, and metrics.
pub struct Cluster {
    cfg: MpcConfig,
    metrics: Arc<MpcMetrics>,
}

impl Cluster {
    /// Create a cluster with fresh metrics.
    pub fn new(cfg: MpcConfig) -> Self {
        Cluster {
            cfg,
            metrics: Arc::new(MpcMetrics::new()),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }

    /// The metrics sink.
    pub fn metrics(&self) -> &MpcMetrics {
        &self.metrics
    }

    /// Shared handle to the metrics sink.
    pub fn metrics_arc(&self) -> Arc<MpcMetrics> {
        Arc::clone(&self.metrics)
    }

    fn capacity(&self) -> usize {
        self.cfg.local_space()
    }

    fn observe_dist<T>(&self, d: &Dist<T>, words_per: usize) {
        let cap = self.capacity() as u64;
        let mut global = 0u64;
        for p in &d.parts {
            let w = (p.len() * words_per) as u64;
            self.metrics.observe_machine(w, cap);
            global += w;
        }
        self.metrics.observe_global(global);
    }

    /// Load `items` onto the minimum number of machines, filling each to
    /// (at most) its word budget.  `words_per` is the width of one record
    /// in machine words.
    pub fn distribute<T: Send>(&self, items: Vec<T>, words_per: usize) -> Dist<T> {
        assert!(words_per >= 1);
        let per = (self.capacity() / words_per).max(1);
        let mut parts: Vec<Vec<T>> = Vec::new();
        let mut cur = Vec::with_capacity(per.min(items.len()));
        for it in items {
            if cur.len() == per {
                parts.push(std::mem::take(&mut cur));
            }
            cur.push(it);
        }
        parts.push(cur);
        let d = Dist { parts };
        self.observe_dist(&d, words_per);
        d
    }

    /// Per-machine transformation within a single round (free in the
    /// model; the closure sees the machine index and its buffer).
    pub fn map_machines<T: Send, U: Send>(
        &self,
        d: Dist<T>,
        words_per_out: usize,
        f: impl Fn(usize, Vec<T>) -> Vec<U> + Sync,
    ) -> Dist<U> {
        let parts: Vec<Vec<U>> = d
            .parts
            .into_par_iter()
            .enumerate()
            .map(|(i, p)| f(i, p))
            .collect();
        let out = Dist { parts };
        self.observe_dist(&out, words_per_out);
        out
    }

    /// Route every record to the machine named by `route`; one round.
    /// Send and receive volumes are charged against the budget.
    pub fn exchange<T: Send>(
        &self,
        d: Dist<T>,
        words_per: usize,
        route: impl Fn(&T) -> usize + Sync,
    ) -> Dist<T> {
        let p = d.machine_count();
        // Outboxes: machine i computes, for each destination, its records.
        let outboxes: Vec<Vec<(usize, T)>> = d
            .parts
            .into_par_iter()
            .map(|part| {
                part.into_iter()
                    .map(|r| {
                        let dest = route(&r);
                        assert!(dest < p, "route produced machine {dest} of {p}");
                        (dest, r)
                    })
                    .collect()
            })
            .collect();
        let cap = self.capacity() as u64;
        let mut total_msgs = 0u64;
        for ob in &outboxes {
            let w = (ob.len() * words_per) as u64;
            self.metrics.observe_machine(w, cap); // send volume
            total_msgs += w;
        }
        let mut parts: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for ob in outboxes {
            for (dest, r) in ob {
                parts[dest].push(r);
            }
        }
        self.metrics.add_rounds(1);
        self.metrics.add_messages(total_msgs);
        let out = Dist { parts };
        self.observe_dist(&out, words_per); // receive volume
        out
    }

    /// Deterministic sample sort by `key`; 3 rounds.  The result is
    /// globally sorted: every record on machine `i` precedes every record
    /// on machine `i+1`, and each buffer is locally sorted.  Stable for
    /// equal keys only up to machine granularity — callers needing total
    /// determinism should use distinct keys (all call sites do).
    pub fn sort_by_key<T, K>(
        &self,
        d: Dist<T>,
        words_per: usize,
        key: impl Fn(&T) -> K + Sync,
    ) -> Dist<T>
    where
        T: Send,
        K: Ord + Copy + Send + Sync,
    {
        let p = d.machine_count();
        if p <= 1 {
            self.metrics.add_rounds(3);
            return self.map_machines(d, words_per, |_, mut part| {
                part.sort_by_key(&key);
                part
            });
        }
        // Round 0 (local): sort each buffer.
        let d = self.map_machines(d, words_per, |_, mut part| {
            part.sort_by_key(&key);
            part
        });
        // Round 1: every machine sends p evenly spaced sample keys to the
        // coordinator (machine 0).  p² words must fit on the coordinator.
        let mut samples: Vec<K> = Vec::with_capacity(p * p);
        for part in &d.parts {
            if part.is_empty() {
                continue;
            }
            for j in 0..p {
                let idx = (j * part.len()) / p;
                samples.push(key(&part[idx]));
            }
        }
        self.metrics.add_rounds(1);
        self.metrics.add_messages(samples.len() as u64);
        self.metrics
            .observe_machine(samples.len() as u64, self.capacity() as u64);
        samples.sort_unstable();
        // p-1 splitters (round 2: broadcast).
        let splitters: Vec<K> = (1..p).map(|i| samples[(i * samples.len()) / p]).collect();
        self.metrics.add_rounds(1);
        self.metrics.add_messages((splitters.len() * p) as u64);
        // Round 3: route by splitter bucket.
        let routed = self.exchange(d, words_per, |r| {
            let k = key(r);
            splitters.partition_point(|s| *s <= k)
        });
        // Local merge (free).
        self.map_machines(routed, words_per, |_, mut part| {
            part.sort_by_key(&key);
            part
        })
    }

    /// Exclusive prefix sum of `value` over the global record order;
    /// 2 rounds.  Returns the dataset with each record paired with the sum
    /// of all values strictly before it.
    pub fn prefix_sum<T: Send + Sync>(
        &self,
        d: Dist<T>,
        words_per: usize,
        value: impl Fn(&T) -> u64 + Sync,
    ) -> Dist<(T, u64)> {
        let local_sums: Vec<u64> = d
            .parts
            .par_iter()
            .map(|part| part.iter().map(&value).sum::<u64>())
            .collect();
        // Converge-cast local sums to coordinator, scatter offsets back.
        self.metrics.add_rounds(2);
        self.metrics.add_messages(2 * local_sums.len() as u64);
        let mut offsets = Vec::with_capacity(local_sums.len());
        let mut acc = 0u64;
        for s in &local_sums {
            offsets.push(acc);
            acc += s;
        }
        let parts: Vec<Vec<(T, u64)>> = d
            .parts
            .into_par_iter()
            .zip(offsets)
            .map(|(part, mut off)| {
                part.into_iter()
                    .map(|r| {
                        let v = value(&r);
                        let out = (r, off);
                        off += v;
                        out
                    })
                    .collect()
            })
            .collect();
        let out = Dist { parts };
        self.observe_dist(&out, words_per + 1);
        out
    }

    /// Broadcast a small value from the coordinator to all machines;
    /// 1 round (constant-fan-out trees would take `O(1/φ)` rounds; the
    /// model charges O(1)).
    pub fn broadcast<V: Clone>(&self, v: V, machine_count: usize) -> Vec<V> {
        self.metrics.add_rounds(1);
        self.metrics.add_messages(machine_count as u64);
        vec![v; machine_count]
    }

    /// Converge-cast an associative reduction of per-machine summaries;
    /// 1 round.
    pub fn all_reduce<T: Send + Sync, A: Send>(
        &self,
        d: &Dist<T>,
        summarize: impl Fn(&[T]) -> A + Sync,
        combine: impl Fn(A, A) -> A,
        identity: A,
    ) -> A {
        let partials: Vec<A> = d.parts.par_iter().map(|p| summarize(p)).collect();
        self.metrics.add_rounds(1);
        self.metrics.add_messages(partials.len() as u64);
        partials.into_iter().fold(identity, combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(n: usize) -> Cluster {
        // phi = 0.5, constant 8 → enough machines to make routing non-trivial.
        Cluster::new(MpcConfig::new(n, n, 0.5).with_space_constant(2.0))
    }

    #[test]
    fn distribute_respects_capacity() {
        let c = small_cluster(256);
        let cap = c.config().local_space();
        let d = c.distribute((0..1000u64).collect(), 1);
        assert!(d.parts.iter().all(|p| p.len() <= cap));
        assert_eq!(d.len(), 1000);
        assert_eq!(c.metrics().budget_violations(), 0);
    }

    #[test]
    fn sort_orders_globally() {
        let c = small_cluster(1024);
        let items: Vec<u64> = (0..5000u64).map(|i| (i * 2_654_435_761) % 5000).collect();
        let d = c.distribute(items.clone(), 1);
        let sorted = c.sort_by_key(d, 1, |&x| x);
        // Globally non-decreasing across machine boundaries.
        let flat = sorted.gather();
        let mut expect = items;
        expect.sort_unstable();
        assert_eq!(flat, expect);
        assert!(c.metrics().rounds() >= 3);
    }

    #[test]
    fn sort_charges_constant_rounds() {
        let c = small_cluster(4096);
        let d = c.distribute((0..20_000u64).rev().collect(), 1);
        let before = c.metrics().rounds();
        let _ = c.sort_by_key(d, 1, |&x| x);
        let after = c.metrics().rounds();
        assert!(after - before <= 4, "sort used {} rounds", after - before);
    }

    #[test]
    fn exchange_routes_and_counts() {
        let c = small_cluster(256);
        let d = c.distribute((0..100u64).collect(), 1);
        let p = d.machine_count();
        let routed = c.exchange(d, 1, |&x| (x as usize) % p);
        for (i, part) in routed.parts.iter().enumerate() {
            assert!(part.iter().all(|&x| x as usize % p == i));
        }
        assert_eq!(routed.len(), 100);
    }

    #[test]
    fn prefix_sum_matches_scan() {
        let c = small_cluster(512);
        let vals: Vec<u64> = (1..=100).collect();
        let d = c.distribute(vals.clone(), 1);
        let scanned = c.prefix_sum(d, 1, |&v| v).gather();
        let mut acc = 0;
        for (i, (v, off)) in scanned.iter().enumerate() {
            assert_eq!(*v, vals[i]);
            assert_eq!(*off, acc, "at {i}");
            acc += v;
        }
    }

    #[test]
    fn all_reduce_sums() {
        let c = small_cluster(256);
        let d = c.distribute((0..100u64).collect(), 1);
        let total = c.all_reduce(&d, |p| p.iter().sum::<u64>(), |a, b| a + b, 0);
        assert_eq!(total, 4950);
    }

    #[test]
    fn overload_is_recorded_not_hidden() {
        let c = Cluster::new(MpcConfig::new(64, 64, 0.5).with_space_constant(1.0));
        // Route everything to machine 0: receive volume blows the budget.
        let d = c.distribute((0..500u64).collect(), 1);
        let _ = c.exchange(d, 1, |_| 0);
        assert!(c.metrics().budget_violations() > 0);
    }

    #[test]
    fn map_machines_preserves_counts() {
        let c = small_cluster(256);
        let d = c.distribute((0..50u64).collect(), 1);
        let doubled = c.map_machines(d, 1, |_, p| p.into_iter().map(|x| x * 2).collect());
        let mut flat = doubled.gather();
        flat.sort_unstable();
        assert_eq!(flat, (0..50u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sort_with_duplicate_keys_keeps_multiset() {
        let c = small_cluster(512);
        let items: Vec<u64> = (0..3000u64).map(|i| i % 7).collect();
        let d = c.distribute(items.clone(), 1);
        let flat = c.sort_by_key(d, 1, |&x| x).gather();
        let mut expect = items;
        expect.sort_unstable();
        assert_eq!(flat, expect);
    }

    #[test]
    fn single_machine_sort() {
        let c = Cluster::new(MpcConfig::new(16, 16, 0.9).with_space_constant(100.0));
        let d = c.distribute(vec![5u64, 3, 1, 4], 1);
        assert_eq!(d.machine_count(), 1);
        assert_eq!(c.sort_by_key(d, 1, |&x| x).gather(), vec![1, 3, 4, 5]);
    }
}
