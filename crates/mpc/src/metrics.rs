//! Round/space/message accounting for MPC executions.
//!
//! Accumulation happens from rayon-parallel per-machine closures, so the
//! peak trackers are atomics (fetch_max) and the cold-path phase log sits
//! behind a `parking_lot` mutex, per the session's concurrency guide: no
//! locks on hot paths, atomics with explicit orderings where contention is
//! possible.

use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};

/// One phase's snapshot in the metrics log.
#[derive(Clone, Debug, Serialize)]
pub struct PhaseMetrics {
    /// Phase label.
    pub label: String,
    /// Rounds charged during the phase.
    pub rounds: u64,
    /// Peak single-machine words during the phase.
    pub max_machine_words: u64,
    /// Words of traffic during the phase.
    pub messages: u64,
}

/// Aggregate metrics of an MPC execution.
#[derive(Debug, Default)]
pub struct MpcMetrics {
    rounds: AtomicU64,
    max_machine_words: AtomicU64,
    global_words_peak: AtomicU64,
    messages: AtomicU64,
    budget_violations: AtomicU64,
    phases: Mutex<Vec<PhaseMetrics>>,
    phase_open: Mutex<Option<(String, u64, u64)>>, // label, rounds at start, msgs at start
    phase_peak: AtomicU64,
}

/// Serializable snapshot of [`MpcMetrics`].
#[derive(Clone, Debug, Serialize)]
pub struct MetricsSnapshot {
    /// Total rounds charged.
    pub rounds: u64,
    /// Peak words held by any single machine.
    pub max_machine_words: u64,
    /// Peak aggregate residency across all machines.
    pub global_words_peak: u64,
    /// Total cross-machine traffic in words.
    pub messages: u64,
    /// Number of times a machine exceeded its budget.
    pub budget_violations: u64,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseMetrics>,
}

impl MpcMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `r` synchronous rounds.
    pub fn add_rounds(&self, r: u64) {
        self.rounds.fetch_add(r, Ordering::Relaxed);
    }

    /// Charge `w` words of cross-machine traffic.
    pub fn add_messages(&self, w: u64) {
        self.messages.fetch_add(w, Ordering::Relaxed);
    }

    /// Record that some machine currently holds `words` words.
    pub fn observe_machine(&self, words: u64, budget: u64) {
        self.max_machine_words.fetch_max(words, Ordering::Relaxed);
        self.phase_peak.fetch_max(words, Ordering::Relaxed);
        if words > budget {
            self.budget_violations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a global residency level (sum over machines).
    pub fn observe_global(&self, words: u64) {
        self.global_words_peak.fetch_max(words, Ordering::Relaxed);
    }

    /// Start a labelled phase (ends any open one).
    pub fn begin_phase(&self, label: impl Into<String>) {
        self.end_phase();
        *self.phase_open.lock() = Some((
            label.into(),
            self.rounds.load(Ordering::Relaxed),
            self.messages.load(Ordering::Relaxed),
        ));
        self.phase_peak.store(0, Ordering::Relaxed);
    }

    /// Close the open phase, recording its deltas.
    pub fn end_phase(&self) {
        if let Some((label, r0, m0)) = self.phase_open.lock().take() {
            self.phases.lock().push(PhaseMetrics {
                label,
                rounds: self.rounds.load(Ordering::Relaxed) - r0,
                max_machine_words: self.phase_peak.load(Ordering::Relaxed),
                messages: self.messages.load(Ordering::Relaxed) - m0,
            });
        }
    }

    /// Total rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Peak single-machine residency so far.
    pub fn max_machine_words(&self) -> u64 {
        self.max_machine_words.load(Ordering::Relaxed)
    }

    /// Budget violations recorded so far.
    pub fn budget_violations(&self) -> u64 {
        self.budget_violations.load(Ordering::Relaxed)
    }

    /// Serializable snapshot (closes any open phase).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.end_phase();
        MetricsSnapshot {
            rounds: self.rounds.load(Ordering::Relaxed),
            max_machine_words: self.max_machine_words.load(Ordering::Relaxed),
            global_words_peak: self.global_words_peak.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            budget_violations: self.budget_violations.load(Ordering::Relaxed),
            phases: self.phases.lock().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_and_messages_accumulate() {
        let m = MpcMetrics::new();
        m.add_rounds(2);
        m.add_rounds(3);
        m.add_messages(10);
        assert_eq!(m.rounds(), 5);
        assert_eq!(m.snapshot().messages, 10);
    }

    #[test]
    fn machine_peak_tracks_max() {
        let m = MpcMetrics::new();
        m.observe_machine(10, 100);
        m.observe_machine(50, 100);
        m.observe_machine(20, 100);
        assert_eq!(m.max_machine_words(), 50);
        assert_eq!(m.budget_violations(), 0);
    }

    #[test]
    fn violations_count() {
        let m = MpcMetrics::new();
        m.observe_machine(101, 100);
        m.observe_machine(99, 100);
        m.observe_machine(150, 100);
        assert_eq!(m.budget_violations(), 2);
    }

    #[test]
    fn phases_capture_deltas_and_peaks() {
        let m = MpcMetrics::new();
        m.begin_phase("sort");
        m.add_rounds(3);
        m.observe_machine(40, 100);
        m.begin_phase("color");
        m.add_rounds(1);
        m.observe_machine(10, 100);
        let snap = m.snapshot();
        assert_eq!(snap.phases.len(), 2);
        assert_eq!(snap.phases[0].label, "sort");
        assert_eq!(snap.phases[0].rounds, 3);
        assert_eq!(snap.phases[0].max_machine_words, 40);
        assert_eq!(snap.phases[1].rounds, 1);
        assert_eq!(snap.phases[1].max_machine_words, 10);
    }

    #[test]
    fn concurrent_observation_is_safe() {
        use rayon::prelude::*;
        let m = MpcMetrics::new();
        (0..1000u64).into_par_iter().for_each(|i| {
            m.observe_machine(i, 500);
            m.add_messages(1);
        });
        assert_eq!(m.max_machine_words(), 999);
        assert_eq!(m.snapshot().messages, 1000);
        assert_eq!(m.budget_violations(), 499);
    }
}
