#![warn(missing_docs)]
//! Simulator for the sublinear-local-space MPC model (Section 2.1 of the
//! paper).
//!
//! The model: machines with local space `s = O(n^φ)` words, synchronous
//! rounds, per-round send *and* receive volume at most `s` words per
//! machine, `Õ(n + m/s)` machines ("our algorithm requires the ability to
//! assign a machine to each node").  All the claims this reproduction
//! regenerates are about **rounds** and **words of space**, so the
//! simulator's contract is exact accounting of both:
//!
//! * [`cluster`] — a *materialized* record-level engine: records really
//!   live in per-machine buffers, exchanges really route them, and the
//!   primitives the paper leans on (deterministic sample-sort and prefix
//!   sums à la Goodrich–Sitchinava–Zhang, broadcast/converge-cast trees)
//!   are implemented and tested against the model's `O(1)`-round budget.
//! * [`graphops`] — the Lemma 17 layer: one (virtual) machine per node,
//!   `d(v) ≤ √s` ops ("send `d(v)` words to each neighbor", "collect the
//!   2-hop neighborhood").  Work is executed data-parallel with rayon while
//!   the accountant charges the rounds and words the op would use and
//!   records violations of the `s` budget.
//! * [`metrics`] — round/space/message accounting shared by both layers.
//!
//! The split mirrors how the paper itself operates: correctness lives in
//! the LOCAL simulation, the MPC contribution is the round/space budget.

pub mod cluster;
pub mod config;
pub mod graphops;
pub mod metrics;

pub use cluster::Cluster;
pub use config::MpcConfig;
pub use graphops::NodeMpc;
pub use metrics::MpcMetrics;
