//! Radio frequency assignment on a cellular deployment.
//!
//! ```sh
//! cargo run --release --example frequency_assignment
//! ```
//!
//! Towers are nodes; an edge means two towers' coverage areas overlap and
//! they must broadcast on different channels.  Each tower's *list* is the
//! set of channels it is licensed for in its region — a genuine
//! list-coloring constraint.  Dense urban clusters produce almost-cliques
//! (the ACD's dense case); the rural backbone is sparse.  We compare the
//! deterministic pipeline with the randomized one and with greedy.

use parcolor_core::baselines::{greedy_sequential, luby_style_local};
use parcolor_core::instance::{D1lcInstance, PaletteArena};
use parcolor_core::{Graph, NodeId, Params, Solver};
use parcolor_local::tape::SplitMix;
use std::time::Instant;

fn main() {
    let mut rng = SplitMix::new(7);
    // Geometry: 30 urban clusters of 12-24 towers (dense overlap) plus a
    // rural grid chain connecting them.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut base = 0u32;
    let mut cluster_spans = Vec::new();
    for _ in 0..30 {
        let size = 12 + rng.below(13) as u32;
        for a in 0..size {
            for b in (a + 1)..size {
                if rng.f64() < 0.85 {
                    edges.push((base + a, base + b));
                }
            }
        }
        cluster_spans.push((base, size));
        base += size;
    }
    // Rural towers: a long corridor, each overlapping its neighbors and
    // occasionally a nearby cluster's edge tower.
    let rural = 600u32;
    for i in 0..rural - 1 {
        edges.push((base + i, base + i + 1));
        if i % 3 == 0 && i > 0 {
            edges.push((base + i, base + i - 1));
        }
    }
    for (cbase, size) in &cluster_spans {
        let r = base + rng.below(rural as u64) as u32;
        edges.push((*cbase + rng.below(*size as u64) as u32, r));
    }
    let n = (base + rural) as usize;
    let g = Graph::from_edges(n, &edges);

    // Licensing: region r may use channels [40r, 40r + licensed); each
    // tower gets its region's band, widened with national channels
    // (10_000+) if its overlap degree demands more.
    let lists: Vec<Vec<u32>> = (0..n as NodeId)
        .map(|v| {
            let region = v / 100;
            let need = g.degree(v) + 1;
            let licensed = 30.max(need);
            let mut l: Vec<u32> = (region * 40..region * 40 + licensed.min(40) as u32).collect();
            let mut nat = 10_000;
            while l.len() < need {
                l.push(nat);
                nat += 1;
            }
            l
        })
        .collect();
    let inst = D1lcInstance::new(g, PaletteArena::from_lists(&lists));

    println!("== frequency assignment via D1LC ==");
    println!(
        "towers={}  overlaps={}  max overlap degree={}",
        n,
        inst.graph.m(),
        inst.graph.max_degree()
    );

    let t0 = Instant::now();
    let det = Solver::deterministic(Params::default().with_seed_bits(6)).solve(&inst);
    let t_det = t0.elapsed();
    inst.verify_coloring(&det.colors).unwrap();

    let t0 = Instant::now();
    let rand = Solver::randomized(Params::default(), 3).solve(&inst);
    let t_rand = t0.elapsed();
    inst.verify_coloring(&rand.colors).unwrap();

    let t0 = Instant::now();
    let (greedy_colors, _) = greedy_sequential(&inst);
    let t_greedy = t0.elapsed();

    let t0 = Instant::now();
    let (_, luby) = luby_style_local(&inst, 5, 100_000);
    let t_luby = t0.elapsed();

    let national = |cs: &[u32]| cs.iter().filter(|&&c| c >= 10_000).count();
    println!(
        "\n{:<28}{:>12}{:>16}{:>14}",
        "method", "MPC rounds", "national chans", "wall time"
    );
    println!(
        "{:<28}{:>12}{:>16}{:>14?}",
        "deterministic (Thm 1)",
        det.cost.mpc_rounds,
        national(&det.colors),
        t_det
    );
    println!(
        "{:<28}{:>12}{:>16}{:>14?}",
        "randomized (Lemma 4)",
        rand.cost.mpc_rounds,
        national(&rand.colors),
        t_rand
    );
    println!(
        "{:<28}{:>12}{:>16}{:>14?}",
        "sequential greedy",
        "n/a",
        national(&greedy_colors),
        t_greedy
    );
    println!(
        "{:<28}{:>12}{:>16}{:>14?}",
        "plain randomized LOCAL", luby.rounds, "-", t_luby
    );
    println!(
        "\nHKNT structure found: {} almost-cliques across {} stage runs",
        det.stats
            .mid_reports
            .iter()
            .map(|r| r.cliques)
            .max()
            .unwrap_or(0),
        det.stats.mid_invocations
    );
}
