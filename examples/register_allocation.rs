//! Register allocation as list coloring.
//!
//! ```sh
//! cargo run --release --example register_allocation
//! ```
//!
//! A classic D1LC consumer: virtual registers are nodes, simultaneous
//! liveness is an edge, and each register's *list* is the subset of
//! physical registers its instruction class may use (e.g. vector values
//! can't live in scalar registers).  We synthesize an interference graph
//! shaped like real ones (long live ranges = chains, call-crossing values
//! = hubs), give each class a different register file, and allocate with
//! the deterministic solver.

use parcolor_core::instance::{D1lcInstance, PaletteArena};
use parcolor_core::{Graph, NodeId, Params, Solver};
use parcolor_local::tape::SplitMix;

/// Register classes with their physical register files.
const SCALAR: &[u32] = &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];
const VECTOR: &[u32] = &[100, 101, 102, 103, 104, 105, 106, 107];
const PRED: &[u32] = &[200, 201, 202, 203];

fn main() {
    let funcs = 40; // simulated functions
    let vregs_per_func = 60;
    let n = funcs * vregs_per_func;
    let mut rng = SplitMix::new(2024);

    // Interference: chains (consecutive liveness) + random overlaps within
    // a function + a few hub values (live across many others).
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for f in 0..funcs {
        let base = (f * vregs_per_func) as NodeId;
        for i in 0..vregs_per_func as NodeId - 1 {
            edges.push((base + i, base + i + 1));
        }
        for _ in 0..vregs_per_func * 2 {
            let a = base + rng.below(vregs_per_func as u64) as NodeId;
            let b = base + rng.below(vregs_per_func as u64) as NodeId;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        // one hub per function: a value live across a call
        let hub = base;
        for i in 1..(vregs_per_func as NodeId / 4) {
            edges.push((hub, base + i * 3 % vregs_per_func as NodeId));
        }
    }
    let g = Graph::from_edges(n, &edges);

    // Class assignment + lists.  D1LC needs |list| ≥ degree+1, so values
    // whose class file is too small for their interference degree must be
    // split (in a real allocator: spilled); we model that by widening to
    // the scalar file, counting how often it happens.
    let mut widened = 0usize;
    let lists: Vec<Vec<u32>> = (0..n as NodeId)
        .map(|v| {
            let class = match rng.below(10) {
                0..=5 => SCALAR,
                6..=8 => VECTOR,
                _ => PRED,
            };
            let need = g.degree(v) + 1;
            if class.len() >= need {
                class.to_vec()
            } else {
                widened += 1;
                // widen: class file + scalar file (dedup!) + spill slots
                let mut l: Vec<u32> = class.to_vec();
                for &r in SCALAR {
                    if !l.contains(&r) {
                        l.push(r);
                    }
                }
                let mut next_slot = 1000;
                while l.len() < need {
                    l.push(next_slot);
                    next_slot += 1;
                }
                l
            }
        })
        .collect();
    let inst = D1lcInstance::new(g, PaletteArena::from_lists(&lists));

    println!("== register allocation via D1LC ==");
    println!(
        "functions={funcs}  vregs={n}  interferences={}  widened/spill-capable={widened}",
        inst.graph.m()
    );

    let sol = Solver::deterministic(Params::default().with_seed_bits(6)).solve(&inst);
    inst.verify_coloring(&sol.colors).expect("allocation valid");

    let spills = sol.colors.iter().filter(|&&c| c >= 1000).count();
    let vector_used = sol
        .colors
        .iter()
        .filter(|&&c| (100..200).contains(&c))
        .count();
    let pred_used = sol
        .colors
        .iter()
        .filter(|&&c| (200..1000).contains(&c))
        .count();
    println!("\nallocation complete (proper + per-class lists respected):");
    println!(
        "  scalar-register values : {}",
        n - vector_used - pred_used - spills
    );
    println!("  vector-register values : {vector_used}");
    println!("  predicate values       : {pred_used}");
    println!("  spill slots used       : {spills}");
    println!("  MPC rounds charged     : {}", sol.cost.mpc_rounds);
    println!("  LOCAL rounds charged   : {}", sol.cost.local_rounds);
}
