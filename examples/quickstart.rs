//! Quickstart: solve a (degree+1)-list-coloring instance deterministically.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a random graph, turns it into the canonical D1LC instance
//! (palette `{0..d(v)}` per node), solves it with the paper's
//! deterministic pipeline (Theorem 1) and with the randomized baseline
//! (Lemma 4), and prints the round/space accounting both ways.

use parcolor_core::{Params, Solver};
use parcolor_graphgen::{degree_plus_one, gnm};

fn main() {
    let n = 2_000;
    let m = 12_000;
    println!("== parcolor quickstart ==");
    println!("instance: G(n={n}, m={m}), palettes = {{0..deg(v)}}\n");

    let inst = degree_plus_one(gnm(n, m, 42));

    // Theorem 1: deterministic D1LC.
    let params = Params::default().with_seed_bits(6);
    let det = Solver::deterministic(params.clone()).solve(&inst);
    inst.verify_coloring(&det.colors).expect("verified");
    println!("deterministic (Theorem 1):");
    println!("  LOCAL rounds charged : {}", det.cost.local_rounds);
    println!("  MPC rounds charged   : {}", det.cost.mpc_rounds);
    println!("  max machine words    : {}", det.cost.max_machine_words);
    println!("  HKNT invocations     : {}", det.stats.mid_invocations);
    println!("  deferrals (total)    : {}", det.stats.total_deferrals);
    println!("  finished by low-deg  : {}", det.stats.lowdeg_finished);
    println!("  finished by greedy   : {}", det.stats.greedy_finished);

    // Lemma 4: randomized baseline on the same instance.
    let rand = Solver::randomized(params, 7).solve(&inst);
    inst.verify_coloring(&rand.colors).expect("verified");
    println!("\nrandomized (Lemma 4):");
    println!("  LOCAL rounds charged : {}", rand.cost.local_rounds);
    println!("  MPC rounds charged   : {}", rand.cost.mpc_rounds);

    // Both complete colorings are proper and palette-respecting; the
    // derandomized one is bit-reproducible run to run.
    let det2 = Solver::deterministic(Params::default().with_seed_bits(6)).solve(&inst);
    assert_eq!(det.colors, det2.colors);
    println!("\nreproducibility check: deterministic solver is bit-stable ✓");
}
