//! A look inside the method of conditional expectations.
//!
//! ```sh
//! cargo run --release --example seed_search_trace
//! ```
//!
//! Runs one `TryRandomColor` procedure on a ring under every PRG seed,
//! then walks the seed bits the way Lemma 10's MPC implementation does —
//! fixing one bit per converge-cast, always taking the branch with the
//! smaller conditional mean of SSP failures — and prints the walk.

use parcolor_core::framework::NormalProcedure;
use parcolor_core::hknt::procs::{SspMode, StageSet, TryRandomColor};
use parcolor_core::instance::ColoringState;
use parcolor_core::{D1lcInstance, Graph, NodeId};
use parcolor_prg::{select_seed, ChunkAssignment, Prg, PrgTape, SeedStrategy};

fn main() {
    let n = 64usize;
    let edges: Vec<(NodeId, NodeId)> = (0..n as NodeId)
        .map(|i| (i, (i + 1) % n as NodeId))
        .collect();
    let g = Graph::from_edges(n, &edges);
    let inst = D1lcInstance::delta_plus_one(g.clone());
    let state = ColoringState::new(&inst);

    let set = StageSet::new(n, (0..n as NodeId).collect());
    let proc = TryRandomColor::new(&g, set, SspMode::Colored, 1);

    let seed_bits = 10;
    let prg = Prg::new(seed_bits);
    let chunks = ChunkAssignment::PerNode;
    let cost = |seed: u64| {
        let tape = PrgTape::new(prg, seed, &chunks);
        let out = proc.simulate(&state, &tape);
        proc.ssp_failures(&state, &out).len() as f64
    };

    println!("== bitwise conditional expectations, TryRandomColor on C_{n} ==");
    println!(
        "seed space: 2^{seed_bits} = {} seeds; SSP = \"node got colored\"\n",
        1u64 << seed_bits
    );

    let sel = select_seed(seed_bits, SeedStrategy::BitwiseCondExp, cost);
    println!(
        "{:<6}{:>14}{:>14}{:>10}",
        "bit", "E[fail|b=0]", "E[fail|b=1]", "choice"
    );
    for (bit, m0, m1) in &sel.trace {
        println!(
            "{:<6}{:>14.3}{:>14.3}{:>10}",
            bit,
            m0,
            m1,
            if m1 < m0 { 1 } else { 0 }
        );
    }
    println!(
        "\nwalk result : seed {} with {} failures",
        sel.seed, sel.cost
    );
    println!("space mean  : {:.3} failures", sel.mean_cost);
    println!("space best  : {} failures", sel.min_cost);
    assert!(sel.satisfies_guarantee());
    println!("guarantee   : chosen ≤ mean ✓ (Lemma 10's requirement)");

    let exh = select_seed(seed_bits, SeedStrategy::Exhaustive, cost);
    println!(
        "\nexhaustive search for comparison: seed {} with {} failures",
        exh.seed, exh.cost
    );
}
