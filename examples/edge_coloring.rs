//! (2Δ−1)-edge-coloring through the D1LC pipeline.
//!
//! ```sh
//! cargo run --release --example edge_coloring
//! ```
//!
//! The paper's introduction motivates D1LC partly as the engine inside
//! edge-coloring algorithms.  This example builds a switch-fabric-like
//! multistage network, reduces (2Δ−1)-edge-coloring to D1LC on the line
//! graph, and colors it deterministically — every color class is then a
//! conflict-free transmission round of the fabric.

use parcolor_core::edge_coloring::{edge_color_deterministic, verify_edge_coloring};
use parcolor_core::{Graph, NodeId, Params};
use parcolor_local::tape::SplitMix;

fn main() {
    // Three-stage Clos-like fabric: 16 inputs, 16 middles, 16 outputs;
    // each input connects to 6 random middles, each middle to 6 outputs.
    let stage = 16u32;
    let mut rng = SplitMix::new(12);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for i in 0..stage {
        let mut used = Vec::new();
        while used.len() < 6 {
            let m = stage + rng.below(stage as u64) as u32;
            if !used.contains(&m) {
                used.push(m);
                edges.push((i, m));
            }
        }
    }
    for m in stage..2 * stage {
        let mut used = Vec::new();
        while used.len() < 6 {
            let o = 2 * stage + rng.below(stage as u64) as u32;
            if !used.contains(&o) {
                used.push(o);
                edges.push((m, o));
            }
        }
    }
    let g = Graph::from_edges(3 * stage as usize, &edges);
    println!("== (2Δ−1)-edge-coloring a switch fabric ==");
    println!(
        "ports={}  links={}  max port degree Δ={}  bound 2Δ−1={}",
        g.n(),
        g.m(),
        g.max_degree(),
        2 * g.max_degree() - 1
    );

    let ec = edge_color_deterministic(&g, Params::default().with_seed_bits(6));
    verify_edge_coloring(&g, &ec).expect("proper edge coloring");

    println!("\ndeterministic schedule found:");
    println!("  transmission rounds (colors) : {}", ec.palette_size());
    println!(
        "  MPC rounds charged           : {}",
        ec.solution.cost.mpc_rounds
    );
    println!(
        "  LOCAL rounds charged         : {}",
        ec.solution.cost.local_rounds
    );

    // Show the first few rounds' schedules.
    for round in 0..3.min(ec.palette_size() as u32) {
        let links: Vec<String> = ec
            .edges
            .iter()
            .zip(ec.colors.iter())
            .filter(|(_, &c)| c == round)
            .take(8)
            .map(|(&(u, v), _)| format!("{u}->{v}"))
            .collect();
        println!(
            "  round {round}: {} links, e.g. {}",
            ec.colors.iter().filter(|&&c| c == round).count(),
            links.join(", ")
        );
    }
    println!("\nEvery round is conflict-free at every port (verified) ✓");
}
