//! The framework beyond coloring: derandomizing Luby's MIS.
//!
//! ```sh
//! cargo run --release --example mis_derandomization
//! ```
//!
//! Section 4.1 of the paper uses Luby's maximal-independent-set algorithm
//! as its worked example of a *normal distributed procedure*: the success
//! property "v is within distance 1 of the output set" survives deferrals
//! because deferring an undominated node removes nothing from the set.
//! This example runs the randomized algorithm next to its derandomized
//! counterpart (PRG + per-round conditional expectations) and prints the
//! Lemma-10 guarantee check for every round.

use parcolor_core::mis::{derandomized_luby_mis, luby_mis, verify_mis};
use parcolor_core::SeedStrategy;
use parcolor_graphgen::gnm;

fn main() {
    let n = 5_000;
    let m = 25_000;
    let g = gnm(n, m, 99);
    println!("== Luby MIS derandomization (paper §4.1 example) ==");
    println!("graph: n={n}, m={m}, Δ={}\n", g.max_degree());

    let rand = luby_mis(&g, 7, 10_000);
    verify_mis(&g, &rand.in_mis).expect("randomized MIS valid");
    let rand_size = rand.in_mis.iter().filter(|&&b| b).count();
    println!(
        "randomized Luby  : rounds={:<3} |MIS|={rand_size}",
        rand.rounds
    );

    let det = derandomized_luby_mis(&g, 8, SeedStrategy::Exhaustive, 10_000);
    verify_mis(&g, &det.in_mis).expect("derandomized MIS valid");
    let det_size = det.in_mis.iter().filter(|&&b| b).count();
    println!(
        "derandomized     : rounds={:<3} |MIS|={det_size}\n",
        det.rounds
    );

    println!("per-round Lemma-10 check (chosen-seed cost ≤ seed-space mean):");
    println!(
        "{:<8}{:>14}{:>14}{:>12}",
        "round", "chosen cost", "mean cost", "deferred"
    );
    for (i, ((cost, mean), defers)) in det
        .guarantee_checks
        .iter()
        .zip(det.deferrals_per_round.iter())
        .enumerate()
    {
        println!("{:<8}{:>14.1}{:>14.2}{:>12}", i + 1, cost, mean, defers);
        assert!(cost <= &(mean + 1e-9), "Lemma 10 guarantee violated");
    }
    println!("\nall rounds satisfied the conditional-expectations guarantee ✓");

    // Determinism: same inputs → same set.
    let det2 = derandomized_luby_mis(&g, 8, SeedStrategy::Exhaustive, 10_000);
    assert_eq!(det.in_mis, det2.in_mis);
    println!("derandomized MIS is bit-reproducible ✓");
}
